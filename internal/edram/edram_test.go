package edram

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"edram/internal/geom"
	"edram/internal/power"
	"edram/internal/tech"
)

func build(t *testing.T, spec Spec) *Macro {
	t.Helper()
	m, err := Build(spec)
	if err != nil {
		t.Fatalf("Build(%+v): %v", spec, err)
	}
	return m
}

func TestPaperConceptCornerPoints(t *testing.T) {
	// Paper §5 key features, all in one place:
	//   cycle better than 7 ns / clock better than 143 MHz,
	//   ~1 Mbit/mm² for >= 8-16 Mbit modules,
	//   up to ~9 GB/s per module at 512 bits,
	//   capacities to at least 128 Mbit, interfaces 16..512.
	m := build(t, Spec{CapacityMbit: 16, InterfaceBits: 256})
	if m.Timing.TCKns >= 7.01 {
		t.Errorf("cycle %.2f ns, want < 7", m.Timing.TCKns)
	}
	if m.ClockMHz < 143 {
		t.Errorf("clock %.0f MHz, want >= 143", m.ClockMHz)
	}
	if m.Area.EfficiencyMbitPerMm2 < 0.85 || m.Area.EfficiencyMbitPerMm2 > 1.6 {
		t.Errorf("area efficiency %.2f Mbit/mm², want ~1", m.Area.EfficiencyMbitPerMm2)
	}

	wide := build(t, Spec{CapacityMbit: 128, InterfaceBits: 512})
	bw := wide.PeakBandwidthGBps()
	if bw < 8 || bw > 12.5 {
		t.Errorf("512-bit module peak %.1f GB/s, want ~9", bw)
	}
}

func TestBuildAutoDefaults(t *testing.T) {
	m := build(t, Spec{CapacityMbit: 16, InterfaceBits: 256})
	if m.Geometry.BlockBits != geom.Block1M {
		t.Error("large macro should default to 1-Mbit blocks")
	}
	if m.Geometry.Banks != 4 {
		t.Errorf("default banks = %d, want 4", m.Geometry.Banks)
	}
	if m.Geometry.PageBits != 2048 {
		t.Errorf("default page = %d, want 8x interface = 2048", m.Geometry.PageBits)
	}

	small := build(t, Spec{CapacityMbit: 1, InterfaceBits: 16})
	if small.Geometry.BlockBits != geom.Block256K {
		t.Error("small macro should default to 256-Kbit blocks")
	}
	if small.Geometry.Banks != 4 {
		t.Errorf("1 Mbit = 4 blocks of 256 Kbit, so 4 banks fit; got %d", small.Geometry.Banks)
	}
}

func TestBuildRejects(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
	}{
		{"zero capacity", Spec{InterfaceBits: 64}},
		{"over ceiling", Spec{CapacityMbit: 512, InterfaceBits: 64}},
		{"bad block", Spec{CapacityMbit: 16, InterfaceBits: 64, BlockBits: 12345}},
		{"banks don't divide blocks", Spec{CapacityMbit: 16, InterfaceBits: 64, Banks: 5}},
		{"interface too wide", Spec{CapacityMbit: 16, InterfaceBits: 1024}},
		{"interface too narrow", Spec{CapacityMbit: 16, InterfaceBits: 8}},
		{"page below interface", Spec{CapacityMbit: 16, InterfaceBits: 256, PageBits: 64}},
	}
	for _, c := range cases {
		if _, err := Build(c.spec); err == nil {
			t.Errorf("%s: Build should fail", c.name)
		}
	}
}

func TestSmallBlocksFasterButLarger(t *testing.T) {
	// The concept's central trade-off: 256-Kbit blocks cycle faster,
	// 1-Mbit blocks pack denser.
	big := build(t, Spec{CapacityMbit: 8, InterfaceBits: 128, BlockBits: geom.Block1M})
	small := build(t, Spec{CapacityMbit: 8, InterfaceBits: 128, BlockBits: geom.Block256K})
	if small.Timing.TCKns >= big.Timing.TCKns {
		t.Errorf("256-Kbit blocks (%.2f ns) must cycle faster than 1-Mbit (%.2f ns)",
			small.Timing.TCKns, big.Timing.TCKns)
	}
	if small.Area.TotalMm2 <= big.Area.TotalMm2 {
		t.Errorf("256-Kbit-block macro (%.2f mm²) must be larger than 1-Mbit (%.2f mm²)",
			small.Area.TotalMm2, big.Area.TotalMm2)
	}
}

func TestTargetClockCaps(t *testing.T) {
	m := build(t, Spec{CapacityMbit: 16, InterfaceBits: 256, TargetClockMHz: 100})
	if m.ClockMHz != 100 {
		t.Errorf("clock = %v, want capped 100", m.ClockMHz)
	}
	if math.Abs(m.Timing.TCKns-10) > 1e-9 {
		t.Errorf("tCK = %v, want 10 ns", m.Timing.TCKns)
	}
	// A target above the array max must not raise the clock.
	fast := build(t, Spec{CapacityMbit: 16, InterfaceBits: 256, TargetClockMHz: 10000})
	free := build(t, Spec{CapacityMbit: 16, InterfaceBits: 256})
	if fast.ClockMHz > free.ClockMHz {
		t.Error("target clock must not exceed the array's maximum")
	}
}

func TestDeviceConfigValid(t *testing.T) {
	for _, mbit := range []int{1, 4, 16, 64, 128} {
		iface := 64
		m := build(t, Spec{CapacityMbit: mbit, InterfaceBits: iface})
		cfg := m.DeviceConfig()
		if err := cfg.Validate(); err != nil {
			t.Errorf("%d Mbit: device config: %v", mbit, err)
		}
		if cfg.TotalBits() != int64(mbit)<<20 {
			t.Errorf("%d Mbit: device holds %d bits", mbit, cfg.TotalBits())
		}
	}
}

func TestRedundancySpares(t *testing.T) {
	levels := map[RedundancyLevel][2]int{
		RedundancyNone: {0, 0},
		RedundancyLow:  {2, 2},
		RedundancyStd:  {4, 4},
		RedundancyHigh: {8, 8},
	}
	for lvl, want := range levels {
		r, c := lvl.Spares()
		if r != want[0] || c != want[1] {
			t.Errorf("%v spares = %d/%d, want %v", lvl, r, c, want)
		}
	}
	if RedundancyLevel(99).String() == "" || RedundancyStd.String() != "std" {
		t.Error("String() broken")
	}
	// Higher redundancy costs area.
	a0 := build(t, Spec{CapacityMbit: 16, InterfaceBits: 64, Redundancy: RedundancyNone})
	a2 := build(t, Spec{CapacityMbit: 16, InterfaceBits: 64, Redundancy: RedundancyHigh})
	if a2.Area.TotalMm2 <= a0.Area.TotalMm2 {
		t.Error("redundancy must cost area")
	}
}

func TestPowerReport(t *testing.T) {
	e := tech.DefaultElectrical()
	ce := power.DefaultCoreEnergy()
	m := build(t, Spec{CapacityMbit: 16, InterfaceBits: 256})

	idle := m.Power(e, ce, 0, 1)
	busy := m.Power(e, ce, 1, 0.9)
	if idle.InterfaceMW != 0 || idle.ActivateMW != 0 || idle.ColumnMW != 0 {
		t.Error("zero utilization must zero the dynamic terms")
	}
	if idle.RefreshMW <= 0 || idle.StandbyMW <= 0 {
		t.Error("refresh and standby persist at idle")
	}
	if busy.TotalMW <= idle.TotalMW {
		t.Error("activity must cost power")
	}
	sum := busy.InterfaceMW + busy.ActivateMW + busy.ColumnMW + busy.RefreshMW + busy.StandbyMW
	if math.Abs(sum-busy.TotalMW) > 1e-9 {
		t.Error("power breakdown must sum to total")
	}
	// Lower hit rate means more activates, hence more power.
	thrash := m.Power(e, ce, 1, 0.1)
	if thrash.ActivateMW <= busy.ActivateMW {
		t.Error("lower hit rate must raise activate power")
	}
	// A busy 16-Mbit macro should sit in the hundreds-of-mW regime
	// (DRAMs are low-power devices, paper §1).
	if busy.TotalMW < 50 || busy.TotalMW > 2000 {
		t.Errorf("busy macro power %.0f mW implausible", busy.TotalMW)
	}
}

func TestFillFrequencyShrinksWithSize(t *testing.T) {
	// Paper §1 footnote 2 + granularity argument: at fixed interface,
	// bigger macros fill less often.
	small := build(t, Spec{CapacityMbit: 4, InterfaceBits: 256})
	large := build(t, Spec{CapacityMbit: 64, InterfaceBits: 256})
	if small.FillFrequencyHz() <= large.FillFrequencyHz() {
		t.Error("fill frequency must fall with capacity")
	}
}

func TestDatasheet(t *testing.T) {
	m := build(t, Spec{CapacityMbit: 16, InterfaceBits: 256, Redundancy: RedundancyStd})
	ds := m.Datasheet()
	for _, want := range []string{"16.00 Mbit", "256 bits", "banks", "Mbit/mm2", "std"} {
		if !strings.Contains(ds, want) {
			t.Errorf("datasheet missing %q:\n%s", want, ds)
		}
	}
}

// Property: every buildable macro has consistent geometry
// (capacity = banks * rows * page) and positive derived metrics.
func TestBuildConsistencyProperty(t *testing.T) {
	f := func(capRaw, ifRaw, bankRaw uint8) bool {
		mbit := 1 << (capRaw % 8) // 1..128
		iface := 16 << (ifRaw % 6)
		banks := 1 << (bankRaw % 3) // 1..4
		m, err := Build(Spec{CapacityMbit: mbit, InterfaceBits: iface, Banks: banks})
		if err != nil {
			return true // rejected configs are fine; we test built ones
		}
		bits := m.Geometry.Banks * m.RowsPerBank() * m.Geometry.PageBits
		if bits != mbit<<20 {
			return false
		}
		return m.PeakBandwidthGBps() > 0 && m.Area.TotalMm2 > 0 && m.ClockMHz > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: peak bandwidth grows monotonically with interface width.
func TestBandwidthMonotoneInWidth(t *testing.T) {
	prev := 0.0
	for iface := 16; iface <= 512; iface *= 2 {
		m, err := Build(Spec{CapacityMbit: 32, InterfaceBits: iface})
		if err != nil {
			t.Fatal(err)
		}
		if bw := m.PeakBandwidthGBps(); bw <= prev {
			t.Fatalf("bandwidth not monotone at width %d", iface)
		} else {
			prev = bw
		}
	}
}

// Envelope sweep: every (capacity, width) point of the §5 concept
// envelope must build, and area/bandwidth must be monotone in the
// obvious directions.
func TestConceptEnvelope(t *testing.T) {
	caps := []int{1, 2, 4, 8, 16, 32, 64, 128, 256}
	var prevArea float64
	for _, mbit := range caps {
		var rowArea float64
		for iface := 16; iface <= 512; iface *= 2 {
			m, err := Build(Spec{CapacityMbit: mbit, InterfaceBits: iface})
			if err != nil {
				t.Fatalf("%d Mbit x%d: %v", mbit, iface, err)
			}
			if err := m.DeviceConfig().Validate(); err != nil {
				t.Fatalf("%d Mbit x%d: device config: %v", mbit, iface, err)
			}
			if m.Timing.TCKns > 7.01 {
				t.Errorf("%d Mbit x%d: cycle %.2f breaks the <7 ns concept promise", mbit, iface, m.Timing.TCKns)
			}
			rowArea = m.Area.TotalMm2
		}
		if rowArea <= prevArea {
			t.Errorf("%d Mbit: area %.1f not larger than previous capacity's %.1f", mbit, rowArea, prevArea)
		}
		prevArea = rowArea
	}
}
