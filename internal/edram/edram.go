// Package edram implements the paper's §5 flexible embedded-DRAM
// concept: application-specific memory macros constructed from 256-Kbit
// and 1-Mbit building blocks, with the memory size, interface width
// (16–512 bits), bank count, page length and redundancy level as free
// design parameters.
//
// Build checks a specification against the concept's constraints,
// derives the physical organization, and returns a Macro with area,
// timing, bandwidth and power views plus a dram.Config for event-driven
// simulation — the "first-time-right designs accompanied by all views"
// the paper promises.
package edram

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"

	"edram/internal/dram"
	"edram/internal/geom"
	"edram/internal/power"
	"edram/internal/reliab"
	"edram/internal/tech"
	"edram/internal/timing"
	"edram/internal/units"
)

// RedundancyLevel selects the number of spare rows/columns per building
// block ("different redundancy levels, in order to optimize the yield of
// the memory module to the specific chip", §5).
type RedundancyLevel int

const (
	RedundancyNone RedundancyLevel = iota
	RedundancyLow                  // 2 spare rows + 2 spare columns per block
	RedundancyStd                  // 4 + 4
	RedundancyHigh                 // 8 + 8
)

// Spares returns the per-block spare row and column counts.
func (r RedundancyLevel) Spares() (rows, cols int) {
	switch r {
	case RedundancyLow:
		return 2, 2
	case RedundancyStd:
		return 4, 4
	case RedundancyHigh:
		return 8, 8
	default:
		return 0, 0
	}
}

// String implements fmt.Stringer.
func (r RedundancyLevel) String() string {
	switch r {
	case RedundancyNone:
		return "none"
	case RedundancyLow:
		return "low"
	case RedundancyStd:
		return "std"
	case RedundancyHigh:
		return "high"
	default:
		return fmt.Sprintf("RedundancyLevel(%d)", int(r))
	}
}

// ParseRedundancy maps a level name ("none", "low", "std", "high") to
// its RedundancyLevel.
func ParseRedundancy(s string) (RedundancyLevel, error) {
	switch s {
	case "none", "":
		return RedundancyNone, nil
	case "low":
		return RedundancyLow, nil
	case "std":
		return RedundancyStd, nil
	case "high":
		return RedundancyHigh, nil
	default:
		return RedundancyNone, fmt.Errorf("edram: unknown redundancy level %q (none, low, std, high)", s)
	}
}

// MarshalJSON renders the level by name, keeping the service layer's
// wire schema human-readable and stable across any renumbering.
func (r RedundancyLevel) MarshalJSON() ([]byte, error) {
	return json.Marshal(r.String())
}

// UnmarshalJSON accepts the level name.
func (r *RedundancyLevel) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	lvl, err := ParseRedundancy(s)
	if err != nil {
		return err
	}
	*r = lvl
	return nil
}

// Spec is the designer-facing macro specification. Zero-valued optional
// fields are auto-derived by Build. The JSON names are the wire schema
// of the service layer (internal/service); Redundancy and ECC travel by
// name ("std", "secded"), not by ordinal.
type Spec struct {
	// CapacityMbit is the usable macro capacity. Must be a multiple of
	// the building-block size.
	CapacityMbit int `json:"capacity_mbit"`
	// InterfaceBits is the data interface width, 16..512, power of two.
	InterfaceBits int `json:"interface_bits"`
	// Banks (optional) is the number of independent banks; default 4
	// (or fewer for tiny macros).
	Banks int `json:"banks,omitempty"`
	// PageBits (optional) is the activated page length; default
	// 8x the interface width, capped by the bank's column span.
	PageBits int `json:"page_bits,omitempty"`
	// BlockBits (optional) selects the building block: geom.Block256K
	// or geom.Block1M. Default: 1 Mbit for macros >= 8 Mbit, else
	// 256 Kbit.
	BlockBits int `json:"block_bits,omitempty"`
	// Redundancy selects spare rows/columns per block.
	Redundancy RedundancyLevel `json:"redundancy,omitempty"`
	// ECC selects the per-word code stored alongside the payload; its
	// check bits widen the array (area, cost) and its decoder sits on
	// the read path (see internal/reliab).
	ECC reliab.ECC `json:"ecc,omitempty"`
	// Process (optional) defaults to tech.Siemens024().
	Process *tech.Process `json:"process,omitempty"`
	// TargetClockMHz (optional) caps the interface clock below the
	// array's maximum.
	TargetClockMHz float64 `json:"target_clock_mhz,omitempty"`
	// WithBIST includes the synthesizable BIST controller (default on
	// via Build; set SkipBIST to omit).
	SkipBIST bool `json:"skip_bist,omitempty"`
}

// CanonicalKey is the normalized fingerprint of the spec used by the
// service layer's cache identity (the Requirements.CanonicalKey
// counterpart for the simulate/datasheet endpoints). Formatting rules
// match: integers in base 10, floats in shortest round-trip form, the
// process by its full parameter fingerprint (tech.Process.CanonicalKey;
// absent = default) — the name alone would alias same-named custom
// processes with different parameters.
//
//cachekey:fields v2 Banks,BlockBits,CapacityMbit,ECC,InterfaceBits,PageBits,Process,Redundancy,SkipBIST,TargetClockMHz
func (s Spec) CanonicalKey() string {
	var b strings.Builder
	b.WriteString("spec/v2")
	fmt.Fprintf(&b, "|cap=%d|iface=%d|banks=%d|page=%d|block=%d",
		s.CapacityMbit, s.InterfaceBits, s.Banks, s.PageBits, s.BlockBits)
	b.WriteString("|red=" + s.Redundancy.String())
	b.WriteString("|ecc=" + s.ECC.String())
	if s.Process != nil {
		b.WriteString("|proc=" + s.Process.CanonicalKey())
	}
	b.WriteString("|clk=" + strconv.FormatFloat(s.TargetClockMHz, 'g', -1, 64))
	fmt.Fprintf(&b, "|bist=%t", !s.SkipBIST)
	return b.String()
}

// Macro is a constructed embedded memory module with all views.
type Macro struct {
	Spec     Spec
	Geometry geom.MacroGeometry
	Area     geom.AreaBreakdown
	Timing   tech.SDRAMTiming
	// ClockMHz is the operating interface clock.
	ClockMHz float64
}

// ConceptMaxCapacityMbit is the concept's published upper bound
// ("embedded memory sizes up to at least 128 Mbits"); Build allows up to
// twice that to model the "at least".
const ConceptMaxCapacityMbit = 256

// Build validates the spec, derives the organization and returns the
// macro. It is NewTemplate followed by Instantiate; callers evaluating
// many page-length variants of one spec (the design explorer's sweep)
// should build the Template once and Instantiate per variant.
func Build(spec Spec) (*Macro, error) {
	t, err := NewTemplate(spec)
	if err != nil {
		return nil, err
	}
	return t.Instantiate(spec.PageBits)
}

// Template is the page-length-independent part of a macro build: the
// derived organization, the block timing with its operating clock, and
// the area breakdown — none of which depend on Spec.PageBits (the page
// spans blocks fired in parallel; it changes activation energy and
// row-buffer behaviour, not the floorplan or the block timing).
// Instantiate stamps out the full Macro for one page length. A Template
// is immutable after NewTemplate and safe for concurrent Instantiate
// calls; the design explorer memoizes Templates per unique projection
// so the sweep's page-length variants share the expensive sub-models.
type Template struct {
	spec    Spec // as given to NewTemplate; PageBits replaced per Instantiate
	geo     geom.MacroGeometry
	area    geom.AreaBreakdown
	timing  tech.SDRAMTiming
	clock   float64
	maxPage int
}

// NewTemplate validates and derives everything about the spec except
// the page length. Spec.PageBits is ignored; its rules are checked by
// Instantiate.
func NewTemplate(spec Spec) (*Template, error) {
	proc := tech.Siemens024()
	if spec.Process != nil {
		proc = *spec.Process
	}
	if spec.CapacityMbit <= 0 {
		return nil, fmt.Errorf("edram: capacity must be positive, got %d Mbit", spec.CapacityMbit)
	}
	if spec.CapacityMbit > ConceptMaxCapacityMbit {
		return nil, fmt.Errorf("edram: capacity %d Mbit exceeds the concept's %d Mbit ceiling",
			spec.CapacityMbit, ConceptMaxCapacityMbit)
	}

	// Building block.
	blockBits := spec.BlockBits
	if blockBits == 0 {
		if spec.CapacityMbit >= 8 {
			blockBits = geom.Block1M
		} else {
			blockBits = geom.Block256K
		}
	}
	if blockBits != geom.Block256K && blockBits != geom.Block1M {
		return nil, fmt.Errorf("edram: block size %d bits not offered (256 Kbit or 1 Mbit)", blockBits)
	}
	capBits := spec.CapacityMbit * units.Mbit
	if capBits%blockBits != 0 {
		return nil, fmt.Errorf("edram: capacity %d Mbit is not a multiple of the %s building block",
			spec.CapacityMbit, units.FormatMbit(units.BitsToMbit(int64(blockBits))))
	}
	blocks := capBits / blockBits

	// Banks: default to the largest count <= 4 that divides the block
	// count (capacities like 13 Mbit have odd block counts).
	banks := spec.Banks
	if banks == 0 {
		for banks = 4; banks > 1; banks-- {
			if banks <= blocks && blocks%banks == 0 {
				break
			}
		}
	}
	if banks < 1 || blocks%banks != 0 {
		return nil, fmt.Errorf("edram: %d banks do not divide %d blocks", banks, blocks)
	}

	g := geom.MacroGeometry{
		Process:       proc,
		BlockBits:     blockBits,
		Blocks:        blocks,
		Banks:         banks,
		InterfaceBits: spec.InterfaceBits,
		WithBIST:      !spec.SkipBIST,
	}
	g.SpareRowsPerBlock, g.SpareColsPerBlock = spec.Redundancy.Spares()
	g.ECCOverheadFrac = spec.ECC.StorageOverhead(spec.InterfaceBits)

	if err := g.ValidateSansPage(); err != nil {
		return nil, err
	}

	// Timing follows the physical building block (wordline and bitline
	// lengths are per block; blocks fire in parallel to form the page).
	org := timing.Organization{PageBits: g.BlockColumns(), RowsPerBank: g.BlockRows()}
	tm, err := timing.ArrayTiming(tech.PC100(), org)
	if err != nil {
		return nil, err
	}
	clock := timing.MaxClockMHz(tm)
	if spec.TargetClockMHz > 0 && spec.TargetClockMHz < clock {
		clock = spec.TargetClockMHz
		tm.TCKns = units.MHzToNs(clock)
	}

	// The area model never reads PageBits, but geom's strict validation
	// does — compute the breakdown under the minimal valid page length
	// (the interface width, always within the bank's column span once
	// ValidateSansPage has passed).
	ga := g
	ga.PageBits = g.InterfaceBits
	area, err := ga.Area()
	if err != nil {
		return nil, err
	}
	return &Template{
		spec:    spec,
		geo:     g,
		area:    area,
		timing:  tm,
		clock:   clock,
		maxPage: g.BlockColumns() * (blocks / banks),
	}, nil
}

// TotalAreaMm2 is the macro area of every instantiation of this
// template (the area model is page-length-independent).
func (t *Template) TotalAreaMm2() float64 { return t.area.TotalMm2 }

// Process is the resolved base process of the template (the spec's, or
// the default when the spec left it nil).
func (t *Template) Process() tech.Process { return t.geo.Process }

// Instantiate completes the build for one page length: 0 auto-derives
// the default (8x the interface width, capped by the bank's column
// span), any other value is validated against the geometry. The
// returned Macro is identical to Build of the template's spec with
// PageBits set to pageBits.
func (t *Template) Instantiate(pageBits int) (*Macro, error) {
	m := new(Macro)
	if err := t.InstantiateInto(m, pageBits); err != nil {
		return nil, err
	}
	return m, nil
}

// InstantiateInto is Instantiate writing into caller-provided storage
// (the design explorer chunk-allocates Macro slots to keep the sweep's
// allocation count flat). On success *m is fully overwritten; on error
// it is left untouched.
func (t *Template) InstantiateInto(m *Macro, pageBits int) error {
	g := t.geo
	page := pageBits
	if page == 0 {
		page = g.InterfaceBits * 8
		if page > t.maxPage {
			page = t.maxPage
		}
	}
	g.PageBits = page
	if err := g.ValidatePage(); err != nil {
		return err
	}
	spec := t.spec
	spec.PageBits = pageBits
	*m = Macro{Spec: spec, Geometry: g, Area: t.area, Timing: t.timing, ClockMHz: t.clock}
	return nil
}

// CapacityMbit returns the usable capacity.
func (m *Macro) CapacityMbit() int { return m.Spec.CapacityMbit }

// PeakBandwidthGBps is the macro's interface peak bandwidth.
func (m *Macro) PeakBandwidthGBps() float64 {
	return units.BandwidthGBps(m.Geometry.InterfaceBits, m.ClockMHz)
}

// FillFrequencyHz is the paper's fill-frequency metric for the macro.
func (m *Macro) FillFrequencyHz() float64 {
	return units.FillFrequencyHz(m.PeakBandwidthGBps(), float64(m.CapacityMbit()))
}

// RowsPerBank returns the logical bank depth in pages.
func (m *Macro) RowsPerBank() int {
	return m.CapacityMbit() * units.Mbit / m.Geometry.Banks / m.Geometry.PageBits
}

// DeviceConfig returns the dram.Config for event-driven simulation.
func (m *Macro) DeviceConfig() dram.Config {
	return dram.Config{
		Banks:       m.Geometry.Banks,
		RowsPerBank: m.RowsPerBank(),
		PageBits:    m.Geometry.PageBits,
		DataBits:    m.Geometry.InterfaceBits,
		Timing:      m.Timing,
		AutoRefresh: true,
	}
}

// PowerReport breaks down macro power at an operating point.
type PowerReport struct {
	InterfaceMW float64
	ActivateMW  float64
	ColumnMW    float64
	RefreshMW   float64
	StandbyMW   float64
	TotalMW     float64
}

// Power evaluates the macro at the given utilization (fraction of clocks
// carrying transfers) and page-hit rate.
func (m *Macro) Power(e tech.Electrical, ce power.CoreEnergy, utilization, hitRate float64) PowerReport {
	utilization = units.Clamp(utilization, 0, 1)
	hitRate = units.Clamp(hitRate, 0, 1)

	var r PowerReport
	r.InterfaceMW = power.OnChipBus(e, m.Geometry.InterfaceBits, m.ClockMHz*utilization, m.Geometry.Process.VddDRAMV).PowerMW

	accessesPerSec := m.ClockMHz * 1e6 * utilization
	activatesPerSec := accessesPerSec * (1 - hitRate)
	r.ActivateMW = activatesPerSec * ce.ActivateEnergyPJ(m.Geometry.PageBits) * 1e-9 // pJ/s -> mW
	bitsPerSec := accessesPerSec * float64(m.Geometry.InterfaceBits)
	r.ColumnMW = bitsPerSec * ce.ColumnPJPerBit * 1e-9

	totalBits := m.CapacityMbit() * units.Mbit
	r.RefreshMW = ce.RefreshPowerMW(totalBits, m.Geometry.PageBits, m.Geometry.Process.RetentionMs)
	r.StandbyMW = ce.StandbyPowerMW(totalBits)
	r.TotalMW = r.InterfaceMW + r.ActivateMW + r.ColumnMW + r.RefreshMW + r.StandbyMW
	return r
}

// Datasheet renders the macro's views as a human-readable block.
func (m *Macro) Datasheet() string {
	var b strings.Builder
	g := m.Geometry
	fmt.Fprintf(&b, "Embedded DRAM macro (%s)\n", g.Process.Name)
	fmt.Fprintf(&b, "  capacity        : %s (%d x %s blocks)\n",
		units.FormatMbit(float64(m.CapacityMbit())), g.Blocks,
		units.FormatMbit(units.BitsToMbit(int64(g.BlockBits))))
	fmt.Fprintf(&b, "  organization    : %d banks x %d pages x %d bits/page\n",
		g.Banks, m.RowsPerBank(), g.PageBits)
	fmt.Fprintf(&b, "  interface       : %d bits @ %.0f MHz\n", g.InterfaceBits, m.ClockMHz)
	fmt.Fprintf(&b, "  peak bandwidth  : %s\n", units.FormatGBps(m.PeakBandwidthGBps()))
	fmt.Fprintf(&b, "  fill frequency  : %.0f /s\n", m.FillFrequencyHz())
	fmt.Fprintf(&b, "  area            : %.2f mm2 (%.2f Mbit/mm2)\n", m.Area.TotalMm2, m.Area.EfficiencyMbitPerMm2)
	if fp, err := g.Floorplan(); err == nil {
		fmt.Fprintf(&b, "  floorplan       : %.2f x %.2f mm, %dx%d blocks, %.2f mm interface wire\n",
			fp.WidthMm, fp.HeightMm, fp.GridCols, fp.GridRows, fp.InterfaceWireMm)
	}
	fmt.Fprintf(&b, "  cycle time      : %.2f ns (tRCD %.1f, tRP %.1f, tRC %.1f)\n",
		m.Timing.TCKns, m.Timing.TRCDns, m.Timing.TRPns, m.Timing.TRCns)
	fmt.Fprintf(&b, "  redundancy      : %s (%d+%d spares/block)\n",
		m.Spec.Redundancy, g.SpareRowsPerBlock, g.SpareColsPerBlock)
	fmt.Fprintf(&b, "  ECC             : %s (%d check bits/word, %.1f%% storage, %.2f mm2)\n",
		m.Spec.ECC, m.Spec.ECC.CheckBits(g.InterfaceBits),
		100*g.ECCOverheadFrac, m.Area.ECCMm2)
	fmt.Fprintf(&b, "  BIST            : %v\n", g.WithBIST)
	return b.String()
}
