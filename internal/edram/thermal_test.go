package edram

import (
	"testing"

	"edram/internal/power"
	"edram/internal/tech"
)

func TestThermalEquilibriumBasics(t *testing.T) {
	e := tech.DefaultElectrical()
	ce := power.DefaultCoreEnergy()
	th := power.DefaultThermal()
	m := build(t, Spec{CapacityMbit: 16, InterfaceBits: 256})

	cool, err := m.PowerAtThermalEquilibrium(e, ce, th, 0.2, 0.9, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !cool.Converged {
		t.Fatal("low-power point must converge")
	}
	if cool.JunctionC <= th.AmbientC {
		t.Error("junction must sit above ambient")
	}
	if cool.RetentionMs <= 0 {
		t.Error("retention must be positive")
	}
}

func TestThermalFeedbackDirection(t *testing.T) {
	// Paper §1: more per-chip power (here: 3 W of co-integrated logic)
	// raises junction temperature, cuts retention and raises refresh
	// power.
	e := tech.DefaultElectrical()
	ce := power.DefaultCoreEnergy()
	th := power.DefaultThermal()
	m := build(t, Spec{CapacityMbit: 16, InterfaceBits: 256})

	alone, err := m.PowerAtThermalEquilibrium(e, ce, th, 0.5, 0.8, 0)
	if err != nil {
		t.Fatal(err)
	}
	hybrid, err := m.PowerAtThermalEquilibrium(e, ce, th, 0.5, 0.8, 3000)
	if err != nil {
		t.Fatal(err)
	}
	if !alone.Converged || !hybrid.Converged {
		t.Fatal("both operating points must converge")
	}
	if hybrid.JunctionC <= alone.JunctionC {
		t.Error("logic power must heat the junction")
	}
	if hybrid.RetentionMs >= alone.RetentionMs {
		t.Error("hotter junction must cut retention")
	}
	if hybrid.Power.RefreshMW <= alone.Power.RefreshMW {
		t.Error("shorter retention must cost refresh power")
	}
	if hybrid.RefreshPenalty <= alone.RefreshPenalty {
		t.Error("refresh penalty must grow with co-integrated power")
	}
	// 3 W through 35 °C/W is ~105 °C of heating: retention collapses
	// by more than an order of magnitude.
	if alone.RetentionMs/hybrid.RetentionMs < 10 {
		t.Errorf("expected >10x retention collapse, got %.1fx",
			alone.RetentionMs/hybrid.RetentionMs)
	}
}

func TestThermalEquilibriumErrors(t *testing.T) {
	e := tech.DefaultElectrical()
	ce := power.DefaultCoreEnergy()
	th := power.DefaultThermal()
	m := build(t, Spec{CapacityMbit: 16, InterfaceBits: 256})
	if _, err := m.PowerAtThermalEquilibrium(e, ce, th, 0.5, 0.8, -1); err == nil {
		t.Error("negative logic power must error")
	}
}
