package edram

import (
	"encoding/json"
	"testing"

	"edram/internal/tech"
)

func TestParseRedundancy(t *testing.T) {
	cases := []struct {
		in   string
		want RedundancyLevel
	}{
		{"none", RedundancyNone}, {"", RedundancyNone},
		{"low", RedundancyLow}, {"std", RedundancyStd}, {"high", RedundancyHigh},
	}
	for _, c := range cases {
		got, err := ParseRedundancy(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseRedundancy(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
	}
	if _, err := ParseRedundancy("extreme"); err == nil {
		t.Error("ParseRedundancy accepted an unknown level")
	}
}

func TestRedundancyJSONRoundTrip(t *testing.T) {
	for _, lvl := range []RedundancyLevel{RedundancyNone, RedundancyLow, RedundancyStd, RedundancyHigh} {
		b, err := json.Marshal(lvl)
		if err != nil {
			t.Fatalf("marshal %v: %v", lvl, err)
		}
		var back RedundancyLevel
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", b, err)
		}
		if back != lvl {
			t.Errorf("round trip %v -> %s -> %v", lvl, b, back)
		}
	}
}

func TestSpecCanonicalKey(t *testing.T) {
	base := Spec{CapacityMbit: 16, InterfaceBits: 64}
	if base.CanonicalKey() != base.CanonicalKey() {
		t.Fatal("key not stable")
	}
	// JSON round-trip preserves the key (string enum forms decode back).
	b, err := json.Marshal(Spec{CapacityMbit: 16, InterfaceBits: 64, Redundancy: RedundancyStd})
	if err != nil {
		t.Fatal(err)
	}
	var back Spec
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Redundancy != RedundancyStd {
		t.Errorf("redundancy lost in round trip: %v", back.Redundancy)
	}
	variants := []Spec{
		{CapacityMbit: 32, InterfaceBits: 64},
		{CapacityMbit: 16, InterfaceBits: 128},
		{CapacityMbit: 16, InterfaceBits: 64, Banks: 4},
		{CapacityMbit: 16, InterfaceBits: 64, PageBits: 2048},
		{CapacityMbit: 16, InterfaceBits: 64, BlockBits: 1 << 20},
		{CapacityMbit: 16, InterfaceBits: 64, Redundancy: RedundancyHigh},
		{CapacityMbit: 16, InterfaceBits: 64, TargetClockMHz: 200},
		{CapacityMbit: 16, InterfaceBits: 64, SkipBIST: true},
	}
	seen := map[string]int{base.CanonicalKey(): -1}
	for i, s := range variants {
		k := s.CanonicalKey()
		if j, dup := seen[k]; dup {
			t.Errorf("variants %d and %d collide on key %q", i, j, k)
		}
		seen[k] = i
	}
}

func TestSpecCanonicalKeyCoversProcessParameters(t *testing.T) {
	// A custom process with a reused name but tweaked parameters is a
	// different spec and must not alias the original in the cache.
	p1, p2 := tech.Siemens024(), tech.Siemens024()
	p2.WaferCostUSD *= 2
	a := Spec{CapacityMbit: 16, InterfaceBits: 64, Process: &p1}
	b := Spec{CapacityMbit: 16, InterfaceBits: 64, Process: &p2}
	if a.CanonicalKey() == b.CanonicalKey() {
		t.Error("same-named processes with different parameters collide on the spec key")
	}
	if a.CanonicalKey() == (Spec{CapacityMbit: 16, InterfaceBits: 64}).CanonicalKey() {
		t.Error("explicit process must be distinguished from the default")
	}
}
