package edram

import (
	"fmt"
	"math"

	"edram/internal/power"
	"edram/internal/tech"
	"edram/internal/units"
)

// ThermalReport is the self-consistent operating point of a macro on a
// hybrid die: paper §1 warns that "although the power consumption per
// system decreases, the power consumption per chip may increase.
// Therefore junction temperature may increase and DRAM retention time
// may decrease" — which in turn raises refresh power. ThermalReport is
// the fixed point of that loop.
type ThermalReport struct {
	Power       PowerReport
	JunctionC   float64
	RetentionMs float64
	// RefreshPenalty is refresh power at the equilibrium over refresh
	// power at nominal retention.
	RefreshPenalty float64
	// Converged is false when the loop hit its iteration cap (thermal
	// runaway regime).
	Converged bool
}

// PowerAtThermalEquilibrium solves the power→junction-temperature→
// retention→refresh-power loop for the macro, with logicPowerMW of
// co-integrated logic dissipating into the same package.
func (m *Macro) PowerAtThermalEquilibrium(e tech.Electrical, ce power.CoreEnergy, th power.Thermal, utilization, hitRate, logicPowerMW float64) (ThermalReport, error) {
	if logicPowerMW < 0 {
		return ThermalReport{}, fmt.Errorf("edram: logic power must be non-negative")
	}
	proc := m.Geometry.Process
	totalBits := m.CapacityMbit() * units.Mbit

	nominal := ce.RefreshPowerMW(totalBits, m.Geometry.PageBits, proc.RetentionMs)

	retention := proc.RetentionMs
	var rep ThermalReport
	const maxIter = 100
	for i := 0; i < maxIter; i++ {
		pr := m.Power(e, ce, utilization, hitRate)
		// Replace the nominal refresh term with the retention-derated
		// one.
		pr.TotalMW -= pr.RefreshMW
		pr.RefreshMW = ce.RefreshPowerMW(totalBits, m.Geometry.PageBits, retention)
		pr.TotalMW += pr.RefreshMW

		tj := th.JunctionC(pr.TotalMW + logicPowerMW)
		newRet, err := power.RetentionAtJunction(proc, tj)
		if err != nil {
			return ThermalReport{}, err
		}
		rep.Power = pr
		rep.JunctionC = tj
		rep.RetentionMs = newRet
		if math.Abs(newRet-retention) < 1e-6*retention {
			rep.Converged = true
			break
		}
		retention = newRet
	}
	if nominal > 0 {
		rep.RefreshPenalty = rep.Power.RefreshMW / nominal
	}
	return rep, nil
}
