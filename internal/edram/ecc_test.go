package edram

import (
	"strings"
	"testing"

	"edram/internal/reliab"
)

func TestBuildWithECC(t *testing.T) {
	base := Spec{CapacityMbit: 16, InterfaceBits: 64}
	plain, err := Build(base)
	if err != nil {
		t.Fatal(err)
	}
	prot := base
	prot.ECC = reliab.ECCSECDED
	m, err := Build(prot)
	if err != nil {
		t.Fatal(err)
	}
	if m.Geometry.ECCOverheadFrac != 0.125 {
		t.Errorf("SEC-DED/64 overhead = %g, want 0.125", m.Geometry.ECCOverheadFrac)
	}
	if m.Area.ECCMm2 <= 0 || m.Area.TotalMm2 <= plain.Area.TotalMm2 {
		t.Errorf("ECC area not accounted: ecc=%g total=%g vs plain %g",
			m.Area.ECCMm2, m.Area.TotalMm2, plain.Area.TotalMm2)
	}
	ds := m.Datasheet()
	if !strings.Contains(ds, "ECC") || !strings.Contains(ds, "secded") {
		t.Errorf("datasheet misses the ECC view:\n%s", ds)
	}
	// The protection must not change the logical organization the
	// simulator sees (check bits live beside the payload).
	if m.DeviceConfig() != plain.DeviceConfig() {
		t.Error("ECC changed the device organization")
	}
}
