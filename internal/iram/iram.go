// Package iram implements the paper's §4.2 processor-memory-gap
// experiment: a conventional system (CPU + L1 + L2 caches + external
// SDRAM over a narrow board-level bus) against a merged processor-DRAM
// (IRAM) system (CPU + L1 + wide on-chip eDRAM, no L2). The paper,
// citing Patterson et al., expects merging to "reduce the latency by a
// factor of 5-10, increase the bandwidth by a factor of 50 to 100 and
// improve the energy efficiency by a factor of 2 to 4"; the package
// computes all three ratios from the underlying technology models and a
// CPI comparison from simulation.
package iram

import (
	"fmt"
	"math/rand"

	"edram/internal/cache"
	"edram/internal/cpu"
	"edram/internal/tech"
	"edram/internal/timing"
	"edram/internal/units"
)

// System describes one of the two §4.2 machines.
type System struct {
	Name string
	CPU  cpu.Config
	// L1/L2 cache configs; L2 absent in the IRAM system.
	L1 cache.Config
	L2 *cache.Config
	// MemLatencyNs is the line-fill latency behind the last cache.
	MemLatencyNs float64
	// MemPeakGBps is the memory system's peak bandwidth (internal
	// aggregate for IRAM: all banks in parallel).
	MemPeakGBps float64
	// LineBytes of the memory transfer unit.
	LineBytes int
	// Energy coefficients (pJ).
	CorePJPerInstr float64
	L1PJPerAccess  float64
	L2PJPerAccess  float64
	MemPJPerLine   float64
	// Prefetch enables next-line prefetch on last-level misses;
	// PrefetchNs is its latency cost (0 when the memory interface is at
	// least two lines wide — the IRAM case).
	Prefetch   bool
	PrefetchNs float64
}

// energyPerBitPJ is the switching energy of one bus line per transfer.
func energyPerBitPJ(loadPF, vdd, activity float64) float64 {
	return activity * loadPF * vdd * vdd
}

// Conventional builds the baseline: 300-MHz CPU on a logic process, two
// cache levels, 64-bit 100-MHz SDRAM channel on the board.
func Conventional() System {
	e := tech.DefaultElectrical()
	pc := tech.PC100()
	const lineBytes = 64
	const busBits = 64
	beats := lineBytes * 8 / busBits
	// Miss path: controller + two board flights + row + column + burst.
	boardNs := 2 * timing.BoardInterfaceDelayNs(e, 80)
	memLat := 15 + boardNs + pc.TRCDns + pc.TCASns + float64(beats)*pc.TCKns

	ifPJ := energyPerBitPJ(e.OffChipLoadPF, 3.3, e.SwitchingActivity) * float64(lineBytes*8)
	corePJ := 0.4*float64(lineBytes*8) + ifPJ // activate share + interface

	return System{
		Name:           "conventional",
		CPU:            cpu.Config{ClockMHz: 300, LoadFrac: 0.22, StoreFrac: 0.10},
		L1:             cache.Config{SizeBytes: 16 << 10, LineBytes: lineBytes, Ways: 2, HitNs: units.MHzToNs(300)},
		L2:             &cache.Config{SizeBytes: 512 << 10, LineBytes: lineBytes, Ways: 4, HitNs: 6 * units.MHzToNs(300)},
		MemLatencyNs:   memLat,
		MemPeakGBps:    units.BandwidthGBps(busBits, 100),
		LineBytes:      lineBytes,
		CorePJPerInstr: 800,
		L1PJPerAccess:  25,
		L2PJPerAccess:  180,
		MemPJPerLine:   corePJ,
	}
}

// Merged builds the IRAM system: the same core merged with on-chip DRAM.
// The CPU pays the DRAM-process logic penalty; memory is a wide, fast
// embedded macro reachable without board crossings, so the L2 is
// dropped. Internal bandwidth aggregates over all banks (the IRAM
// argument: every subarray can deliver data in parallel).
func Merged() System {
	proc := tech.Siemens024()
	// The on-chip macro is built from small 256-Kbit (512x512) blocks,
	// the fast corner of the §5 concept.
	ed, err := timing.ArrayTiming(tech.PC100(), timing.Organization{PageBits: 512, RowsPerBank: 512})
	if err != nil {
		panic(err) // constant organization; cannot fail
	}
	e := tech.DefaultElectrical()
	const lineBytes = 64
	const busBits = 512 // one line per beat
	const banks = 8
	// The macro interface clocks at the §5 concept's nominal 143 MHz
	// even when the small array could cycle faster internally.
	clock := timing.MaxClockMHz(ed)
	if clock > 143 {
		clock = 143
	}
	memLat := 3 + ed.TRCDns + ed.TCASns + ed.TCKns // controller + row + column + beat

	ifPJ := energyPerBitPJ(e.OnChipLoadPF, proc.VddDRAMV, e.SwitchingActivity) * float64(lineBytes*8)
	corePJ := 0.4*float64(lineBytes*8) + ifPJ

	cpuClock := 300 / proc.LogicDelayRel // slower transistors on the DRAM process
	vddScale := (proc.VddDRAMV / 3.3) * (proc.VddDRAMV / 3.3)

	return System{
		Name:           "iram",
		CPU:            cpu.Config{ClockMHz: cpuClock, LoadFrac: 0.22, StoreFrac: 0.10},
		L1:             cache.Config{SizeBytes: 16 << 10, LineBytes: lineBytes, Ways: 2, HitNs: units.MHzToNs(cpuClock)},
		L2:             nil,
		MemLatencyNs:   memLat,
		MemPeakGBps:    float64(banks) * units.BandwidthGBps(busBits, clock),
		LineBytes:      lineBytes,
		CorePJPerInstr: 800 * vddScale,
		L1PJPerAccess:  25 * vddScale,
		MemPJPerLine:   corePJ,
	}
}

// Build instantiates the system's cache hierarchy.
func (s System) Build() (*cache.Hierarchy, error) {
	l1, err := cache.New(s.L1)
	if err != nil {
		return nil, err
	}
	h := &cache.Hierarchy{L1: l1, MemoryNs: s.MemLatencyNs, WritebackNs: s.MemLatencyNs / 2,
		PrefetchNext: s.Prefetch, PrefetchNs: s.PrefetchNs}
	if s.L2 != nil {
		l2, err := cache.New(*s.L2)
		if err != nil {
			return nil, err
		}
		h.L2 = l2
	}
	return h, nil
}

// energyMemory wraps a hierarchy to account energy per access.
type energyMemory struct {
	h   *cache.Hierarchy
	sys System
	pj  float64
}

func (m *energyMemory) AccessNs(addr int64, write bool) float64 {
	l1Before := m.h.L1.Stats()
	var l2Before cache.Stats
	if m.h.L2 != nil {
		l2Before = m.h.L2.Stats()
	}
	lat := m.h.AccessNs(addr, write)
	m.pj += m.sys.L1PJPerAccess
	if m.h.L2 != nil {
		d := m.h.L2.Stats().Accesses - l2Before.Accesses
		m.pj += float64(d) * m.sys.L2PJPerAccess
		if m.h.L2.Stats().Misses > l2Before.Misses {
			m.pj += m.sys.MemPJPerLine
		}
	} else if m.h.L1.Stats().Misses > l1Before.Misses {
		m.pj += m.sys.MemPJPerLine
	}
	return lat
}

// RunResult couples the CPI result with the energy accounting.
type RunResult struct {
	CPU cpu.Result
	// EnergyPJPerInstr is total (core + cache + memory) energy per
	// instruction.
	EnergyPJPerInstr float64
	// EnergyPJPerMemRef is the memory-path energy (caches + DRAM) per
	// load/store the core issues — the quantity the IRAM literature's
	// 2-4x energy-efficiency claim refers to (the CPU core is common
	// to both systems and excluded).
	EnergyPJPerMemRef float64
	L1HitRate         float64
}

// RunWorkload executes n instructions of the standard gap workload on
// the system.
func (s System) RunWorkload(n int64, seed int64) (RunResult, error) {
	// Workload shape: a hot set resident in L1, a heap somewhat larger
	// than the conventional L2 (so the L2 filters most but not all
	// off-chip traffic — the regime the IRAM energy claim refers to),
	// and a streaming component.
	return s.RunCustom(n, cpu.Workload{
		HotBytes:   8 << 10,
		HotFrac:    0.9,
		HeapBytes:  8 << 20,
		StreamFrac: 0.05,
		WarmFrac:   0.92,
		WarmBytes:  64 << 10,
		Rng:        rand.New(rand.NewSource(seed)),
	})
}

// RunCustom executes n instructions of a caller-supplied workload on
// the system (the workload's Rng seeds the run).
func (s System) RunCustom(n int64, w cpu.Workload) (RunResult, error) {
	h, err := s.Build()
	if err != nil {
		return RunResult{}, err
	}
	mem := &energyMemory{h: h, sys: s}
	res, err := cpu.Run(s.CPU, &w, mem, n)
	if err != nil {
		return RunResult{}, err
	}
	total := s.CorePJPerInstr*float64(n) + mem.pj
	out := RunResult{
		CPU:              res,
		EnergyPJPerInstr: total / float64(n),
		L1HitRate:        h.L1.Stats().HitRate(),
	}
	if res.MemOps > 0 {
		out.EnergyPJPerMemRef = mem.pj / float64(res.MemOps)
	}
	return out, nil
}

// Metrics are the three paper ratios plus the simulated CPI comparison.
type Metrics struct {
	LatencyRatio   float64 // conventional / iram memory latency
	BandwidthRatio float64 // iram / conventional peak bandwidth
	EnergyRatio    float64 // conventional / iram memory-path energy per reference
	ConvCPI        float64
	IRAMCPI        float64
	Conventional   RunResult
	IRAM           RunResult
}

// Compare runs both systems on the same workload and reports the ratios.
func Compare(n int64, seed int64) (Metrics, error) {
	if n <= 0 {
		return Metrics{}, fmt.Errorf("iram: instruction count must be positive")
	}
	conv := Conventional()
	ir := Merged()
	cr, err := conv.RunWorkload(n, seed)
	if err != nil {
		return Metrics{}, err
	}
	irr, err := ir.RunWorkload(n, seed)
	if err != nil {
		return Metrics{}, err
	}
	m := Metrics{
		LatencyRatio:   units.Ratio(conv.MemLatencyNs, ir.MemLatencyNs),
		BandwidthRatio: units.Ratio(ir.MemPeakGBps, conv.MemPeakGBps),
		EnergyRatio:    units.Ratio(cr.EnergyPJPerMemRef, irr.EnergyPJPerMemRef),
		ConvCPI:        cr.CPU.CPI,
		IRAMCPI:        irr.CPU.CPI,
		Conventional:   cr,
		IRAM:           irr,
	}
	return m, nil
}
