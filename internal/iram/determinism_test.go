package iram

import (
	"reflect"
	"testing"
)

// Compare drives two full CPU + cache-hierarchy simulations off one
// seed; every derived ratio must be bit-identical across runs (the
// determinism invariant edramvet enforces for model packages).
func TestCompareDeterministic(t *testing.T) {
	a, err := Compare(20000, 11)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Compare(20000, 11)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed must reproduce all metrics:\n%+v\nvs\n%+v", a, b)
	}
}

// Different seeds must actually change the simulated runs — otherwise
// the two-run test above proves nothing.
func TestCompareSeedSensitive(t *testing.T) {
	a, err := Compare(20000, 11)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Compare(20000, 12)
	if err != nil {
		t.Fatal(err)
	}
	if a.Conventional.CPU == b.Conventional.CPU {
		t.Error("different seeds produced identical conventional runs")
	}
}
