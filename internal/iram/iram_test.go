package iram

import (
	"testing"
)

func TestPaperRatios(t *testing.T) {
	// Paper §4.2: "Merging a microprocessor with DRAM can reduce the
	// latency by a factor of 5-10, increase the bandwidth by a factor
	// of 50 to 100 and improve the energy efficiency by a factor of
	// 2 to 4."
	m, err := Compare(200000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.LatencyRatio < 4 || m.LatencyRatio > 12 {
		t.Errorf("latency ratio %.1f outside the paper's 5-10x regime", m.LatencyRatio)
	}
	if m.BandwidthRatio < 40 || m.BandwidthRatio > 130 {
		t.Errorf("bandwidth ratio %.0f outside the paper's 50-100x regime", m.BandwidthRatio)
	}
	if m.EnergyRatio < 1.5 || m.EnergyRatio > 5 {
		t.Errorf("energy ratio %.1f outside the paper's 2-4x regime", m.EnergyRatio)
	}
}

func TestIRAMBeatsConventionalCPI(t *testing.T) {
	m, err := Compare(200000, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Per-cycle efficiency: the merged system stalls less.
	if m.IRAMCPI >= m.ConvCPI {
		t.Errorf("IRAM CPI %.2f must beat conventional CPI %.2f", m.IRAMCPI, m.ConvCPI)
	}
	if m.ConvCPI <= 1 || m.IRAMCPI <= 1 {
		t.Error("CPIs must exceed 1 under memory stalls")
	}
}

func TestSystemsBuild(t *testing.T) {
	for _, s := range []System{Conventional(), Merged()} {
		h, err := s.Build()
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if h.L1 == nil {
			t.Fatalf("%s: no L1", s.Name)
		}
		if s.Name == "conventional" && h.L2 == nil {
			t.Error("conventional system must have an L2")
		}
		if s.Name == "iram" && h.L2 != nil {
			t.Error("IRAM system must not have an L2")
		}
		if err := s.CPU.Validate(); err != nil {
			t.Errorf("%s: cpu config: %v", s.Name, err)
		}
	}
}

func TestSystemProperties(t *testing.T) {
	conv, ir := Conventional(), Merged()
	if ir.MemLatencyNs >= conv.MemLatencyNs {
		t.Error("IRAM memory latency must be lower")
	}
	if ir.MemPeakGBps <= conv.MemPeakGBps {
		t.Error("IRAM bandwidth must be higher")
	}
	// The DRAM-process CPU clocks lower (slow transistors, paper §1).
	if ir.CPU.ClockMHz >= conv.CPU.ClockMHz {
		t.Error("IRAM CPU must clock lower on the DRAM process")
	}
	// But its memory energy per line is far lower (on-chip interface).
	if ir.MemPJPerLine >= conv.MemPJPerLine {
		t.Error("IRAM per-line memory energy must be lower")
	}
}

func TestRunWorkloadDeterministic(t *testing.T) {
	s := Conventional()
	a, err := s.RunWorkload(5000, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.RunWorkload(5000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a.CPU != b.CPU || a.EnergyPJPerInstr != b.EnergyPJPerInstr {
		t.Error("same seed must reproduce the run")
	}
	if a.L1HitRate <= 0 || a.L1HitRate >= 1 {
		t.Errorf("L1 hit rate %.2f implausible", a.L1HitRate)
	}
}

func TestCompareErrors(t *testing.T) {
	if _, err := Compare(0, 1); err == nil {
		t.Error("zero instructions must error")
	}
}

func TestEnergyAccountingPositive(t *testing.T) {
	for _, s := range []System{Conventional(), Merged()} {
		r, err := s.RunWorkload(5000, 4)
		if err != nil {
			t.Fatal(err)
		}
		if r.EnergyPJPerInstr <= s.CorePJPerInstr {
			t.Errorf("%s: energy/instr %.0f pJ must exceed bare core %.0f pJ",
				s.Name, r.EnergyPJPerInstr, s.CorePJPerInstr)
		}
	}
}
