// Package cpu models a simple in-order processor executing a synthetic
// instruction mix over a memory system. It provides the CPI/IPC metric
// for the paper's §4.2 processor-memory-gap experiment: the same core,
// once behind a conventional cache + external-DRAM path and once merged
// with on-chip DRAM (internal/iram), shows how much performance the
// memory system costs.
package cpu

import (
	"fmt"
	"math/rand"

	"edram/internal/units"
)

// Memory is the interface the core loads from and stores to. AccessNs
// returns the latency of the access; the core stalls for it.
type Memory interface {
	AccessNs(addr int64, write bool) float64
}

// Config describes the core.
type Config struct {
	ClockMHz float64
	// LoadFrac / StoreFrac are the fractions of instructions that are
	// loads and stores (the rest execute in one cycle).
	LoadFrac  float64
	StoreFrac float64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.ClockMHz <= 0 {
		return fmt.Errorf("cpu: clock must be positive")
	}
	if c.LoadFrac < 0 || c.StoreFrac < 0 || c.LoadFrac+c.StoreFrac > 1 {
		return fmt.Errorf("cpu: memory-op fractions invalid: load %.2f store %.2f", c.LoadFrac, c.StoreFrac)
	}
	return nil
}

// CycleNs returns the core cycle time (0 for a non-positive clock,
// following the units-package degenerate-corner convention).
func (c Config) CycleNs() float64 { return units.MHzToNs(c.ClockMHz) }

// Workload generates the data addresses of the instruction stream: a
// resident working set (stack/locals) mixed with a larger heap region
// and a streaming component — enough structure for caches to matter
// without modelling an ISA.
type Workload struct {
	// HotBytes is the resident working-set size; HotFrac the fraction
	// of memory ops that land in it.
	HotBytes int64
	HotFrac  float64
	// HeapBytes is the large region the rest of the accesses hit.
	HeapBytes int64
	// StreamFrac of the heap accesses walk sequentially.
	StreamFrac float64
	// WarmFrac of the remaining heap accesses land in the first
	// WarmBytes of the heap (a Zipf-like warm/cold split; 0 = uniform).
	WarmFrac  float64
	WarmBytes int64
	Rng       *rand.Rand

	streamPos int64
}

// Validate checks the workload.
func (w *Workload) Validate() error {
	if w.HotBytes <= 0 || w.HeapBytes <= 0 {
		return fmt.Errorf("cpu: workload regions must be positive")
	}
	if w.HotFrac < 0 || w.HotFrac > 1 || w.StreamFrac < 0 || w.StreamFrac > 1 || w.WarmFrac < 0 || w.WarmFrac > 1 {
		return fmt.Errorf("cpu: workload fractions out of range")
	}
	if w.WarmFrac > 0 && (w.WarmBytes <= 0 || w.WarmBytes > w.HeapBytes) {
		return fmt.Errorf("cpu: warm region must be positive and within the heap")
	}
	return nil
}

// NextAddr returns the next data address.
func (w *Workload) NextAddr() int64 {
	if w.Rng == nil {
		w.Rng = rand.New(rand.NewSource(1))
	}
	if w.Rng.Float64() < w.HotFrac {
		return w.Rng.Int63n(w.HotBytes)
	}
	if w.Rng.Float64() < w.StreamFrac {
		w.streamPos = (w.streamPos + 32) % w.HeapBytes
		return w.HotBytes + w.streamPos
	}
	if w.WarmFrac > 0 && w.Rng.Float64() < w.WarmFrac {
		return w.HotBytes + w.Rng.Int63n(w.WarmBytes)
	}
	return w.HotBytes + w.Rng.Int63n(w.HeapBytes)
}

// Result reports one run.
type Result struct {
	Instructions int64
	MemOps       int64
	// TotalNs is the execution time.
	TotalNs float64
	// MemStallNs is the time spent waiting on memory beyond one cycle
	// per memory op.
	MemStallNs float64
	CPI        float64
	// MIPS is the achieved instruction rate.
	MIPS float64
}

// Run executes n instructions of the workload against mem.
func Run(cfg Config, w *Workload, mem Memory, n int64) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if err := w.Validate(); err != nil {
		return Result{}, err
	}
	if n <= 0 {
		return Result{}, fmt.Errorf("cpu: instruction count must be positive, got %d", n)
	}
	if w.Rng == nil {
		w.Rng = rand.New(rand.NewSource(1))
	}
	cyc := cfg.CycleNs()
	var res Result
	res.Instructions = n
	for i := int64(0); i < n; i++ {
		res.TotalNs += cyc // every instruction costs one issue cycle
		r := w.Rng.Float64()
		var write bool
		switch {
		case r < cfg.LoadFrac:
			write = false
		case r < cfg.LoadFrac+cfg.StoreFrac:
			write = true
		default:
			continue
		}
		res.MemOps++
		lat := mem.AccessNs(w.NextAddr(), write)
		if lat > cyc {
			res.MemStallNs += lat - cyc
			res.TotalNs += lat - cyc
		}
	}
	res.CPI = res.TotalNs / cyc / float64(n)
	res.MIPS = float64(n) / res.TotalNs * 1e3
	return res, nil
}

// FlatMemory is a fixed-latency memory, useful as a baseline and in
// tests.
type FlatMemory struct{ LatencyNs float64 }

// AccessNs implements Memory.
func (f FlatMemory) AccessNs(int64, bool) float64 { return f.LatencyNs }
