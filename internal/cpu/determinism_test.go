package cpu

import (
	"math/rand"
	"testing"
)

// Two workloads built from the same seed must emit identical address
// streams — the property everything downstream (iram, experiments)
// leans on for reproducible runs.
func TestWorkloadAddressStreamDeterministic(t *testing.T) {
	mk := func() *Workload {
		w := Workload{
			HotBytes:   8 << 10,
			HotFrac:    0.8,
			HeapBytes:  1 << 20,
			StreamFrac: 0.1,
			WarmFrac:   0.9,
			WarmBytes:  64 << 10,
			Rng:        rand.New(rand.NewSource(21)),
		}
		if err := w.Validate(); err != nil {
			t.Fatal(err)
		}
		return &w
	}
	a, b := mk(), mk()
	for i := 0; i < 10000; i++ {
		if x, y := a.NextAddr(), b.NextAddr(); x != y {
			t.Fatalf("address streams diverge at ref %d: %d vs %d", i, x, y)
		}
	}
}
