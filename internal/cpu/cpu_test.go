package cpu

import (
	"math"
	"math/rand"
	"testing"
)

func goodCfg() Config {
	return Config{ClockMHz: 300, LoadFrac: 0.22, StoreFrac: 0.10}
}

func goodWorkload(seed int64) *Workload {
	return &Workload{
		HotBytes: 8 << 10, HotFrac: 0.6,
		HeapBytes: 8 << 20, StreamFrac: 0.3,
		Rng: rand.New(rand.NewSource(seed)),
	}
}

func TestConfigValidate(t *testing.T) {
	if goodCfg().Validate() != nil {
		t.Fatal("good config rejected")
	}
	bad := []Config{
		{ClockMHz: 0, LoadFrac: 0.2, StoreFrac: 0.1},
		{ClockMHz: 100, LoadFrac: -0.1, StoreFrac: 0.1},
		{ClockMHz: 100, LoadFrac: 0.7, StoreFrac: 0.5},
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if math.Abs(goodCfg().CycleNs()-1e3/300) > 1e-12 {
		t.Error("cycle time wrong")
	}
}

func TestWorkloadValidate(t *testing.T) {
	if goodWorkload(1).Validate() != nil {
		t.Fatal("good workload rejected")
	}
	bad := []*Workload{
		{HotBytes: 0, HeapBytes: 1 << 20},
		{HotBytes: 1 << 10, HeapBytes: 0},
		{HotBytes: 1 << 10, HeapBytes: 1 << 20, HotFrac: 1.5},
		{HotBytes: 1 << 10, HeapBytes: 1 << 20, StreamFrac: -0.1},
	}
	for i, w := range bad {
		if w.Validate() == nil {
			t.Errorf("bad workload %d accepted", i)
		}
	}
}

func TestWorkloadAddressRanges(t *testing.T) {
	w := goodWorkload(2)
	for i := 0; i < 10000; i++ {
		a := w.NextAddr()
		if a < 0 || a >= w.HotBytes+w.HeapBytes {
			t.Fatalf("address %d out of range", a)
		}
	}
	// Default RNG path.
	w2 := &Workload{HotBytes: 1 << 10, HotFrac: 0.5, HeapBytes: 1 << 20}
	if w2.NextAddr() < 0 {
		t.Error("default-rng address negative")
	}
}

func TestRunIdealMemoryCPIOne(t *testing.T) {
	// With zero-latency memory, CPI must be exactly 1.
	res, err := Run(goodCfg(), goodWorkload(3), FlatMemory{LatencyNs: 0}, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.CPI-1) > 1e-9 {
		t.Errorf("ideal CPI = %v, want 1", res.CPI)
	}
	if res.MemStallNs != 0 {
		t.Error("no stalls expected with ideal memory")
	}
}

func TestRunSlowMemoryRaisesCPI(t *testing.T) {
	fast, err := Run(goodCfg(), goodWorkload(4), FlatMemory{LatencyNs: 10}, 20000)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := Run(goodCfg(), goodWorkload(4), FlatMemory{LatencyNs: 200}, 20000)
	if err != nil {
		t.Fatal(err)
	}
	if slow.CPI <= fast.CPI {
		t.Fatalf("slower memory must raise CPI: %.2f vs %.2f", slow.CPI, fast.CPI)
	}
	if slow.MIPS >= fast.MIPS {
		t.Error("slower memory must lower MIPS")
	}
	// Expected CPI with flat latency L ns: 1 + memFrac*(L-cyc)/cyc.
	cyc := goodCfg().CycleNs()
	memFrac := float64(slow.MemOps) / float64(slow.Instructions)
	want := 1 + memFrac*(200-cyc)/cyc
	if math.Abs(slow.CPI-want) > 0.05*want {
		t.Errorf("CPI = %.2f, analytic %.2f", slow.CPI, want)
	}
}

func TestRunMemOpFraction(t *testing.T) {
	res, err := Run(goodCfg(), goodWorkload(5), FlatMemory{}, 50000)
	if err != nil {
		t.Fatal(err)
	}
	frac := float64(res.MemOps) / float64(res.Instructions)
	if math.Abs(frac-0.32) > 0.02 {
		t.Errorf("memory-op fraction %.3f, want ~0.32", frac)
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := Run(Config{}, goodWorkload(1), FlatMemory{}, 100); err == nil {
		t.Error("bad config must error")
	}
	if _, err := Run(goodCfg(), &Workload{}, FlatMemory{}, 100); err == nil {
		t.Error("bad workload must error")
	}
	if _, err := Run(goodCfg(), goodWorkload(1), FlatMemory{}, 0); err == nil {
		t.Error("zero instructions must error")
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := Run(goodCfg(), goodWorkload(7), FlatMemory{LatencyNs: 50}, 5000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(goodCfg(), goodWorkload(7), FlatMemory{LatencyNs: 50}, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("same seed must reproduce the run")
	}
}
