package sched

import (
	"testing"

	"edram/internal/dram"
	"edram/internal/mapping"
	"edram/internal/tech"
	"edram/internal/traffic"
)

func observerRig(t *testing.T) (dram.Config, mapping.Mapping, []Client) {
	t.Helper()
	cfg := dram.Config{Banks: 4, RowsPerBank: 1024, PageBits: 2048, DataBits: 64, Timing: tech.PC100()}
	mp, err := mapping.NewBankInterleaved(mapping.Geometry{Banks: 4, RowsBank: 1024, PageBytes: 2048 / 8})
	if err != nil {
		t.Fatal(err)
	}
	clients := []Client{
		{Name: "stream", Gen: &traffic.Sequential{ClientID: 0, Bits: 64, RateGB: 1, Count: 200}},
		{Name: "stride", Gen: &traffic.Strided{ClientID: 1, StartB: 1 << 20, StrideB: 256, LimitB: 1 << 20, Bits: 64, RateGB: 1, Count: 200}},
	}
	return cfg, mp, clients
}

// The Observer hook must see exactly the events Trace records, in the
// same service order.
func TestObserverMatchesTrace(t *testing.T) {
	cfg, mp, clients := observerRig(t)
	var seen []TraceEntry
	res, err := RunWithOptions(cfg, mp, Options{
		Policy:   OpenPageFirst,
		Trace:    true,
		Observer: func(e TraceEntry) { seen = append(seen, e) },
	}, clients)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) == 0 {
		t.Fatal("empty trace")
	}
	if len(seen) != len(res.Trace) {
		t.Fatalf("observer saw %d events, trace recorded %d", len(seen), len(res.Trace))
	}
	for i := range seen {
		if seen[i] != res.Trace[i] {
			t.Fatalf("event %d differs: observer %+v vs trace %+v", i, seen[i], res.Trace[i])
		}
	}
}

// Observer alone must not populate Result.Trace (streaming without
// buffering is the point of the hook).
func TestObserverWithoutTrace(t *testing.T) {
	cfg, mp, clients := observerRig(t)
	events := 0
	res, err := RunWithOptions(cfg, mp, Options{
		Policy:   RoundRobin,
		Observer: func(TraceEntry) { events++ },
	}, clients)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) != 0 {
		t.Fatalf("trace populated (%d entries) without Options.Trace", len(res.Trace))
	}
	want := 0
	for _, c := range res.Clients {
		want += c.Stats.Count
	}
	if events != want {
		t.Fatalf("observer saw %d events, %d requests served", events, want)
	}
}
