package sched

import (
	"math/rand"
	"reflect"
	"testing"

	"edram/internal/dram"
	"edram/internal/reliab"
	"edram/internal/traffic"
)

// faultyOptions arms the reliability pipeline with enough defect
// density to exercise every rung in a short run.
func faultyOptions(seed int64, events *[]reliab.FaultEvent) Options {
	opt := Options{
		Policy: RoundRobin,
		Reliability: &reliab.Config{
			Seed:                 seed,
			ECC:                  reliab.ECCSECDED,
			MeanDefectsPerBank:   4,
			RetentionTailPerBank: 6,
			SoftErrorsPerMAccess: 5000,
			SpareRowsPerBank:     2,
		},
	}
	if events != nil {
		opt.FaultObserver = func(ev reliab.FaultEvent) { *events = append(*events, ev) }
	}
	return opt
}

func faultyClients() []Client {
	return []Client{
		{Name: "reader", Gen: &traffic.Random{
			ClientID: 0, WindowB: 1 << 20, Bits: 512, RateGB: 2, Count: 800,
			Rng: rand.New(rand.NewSource(9)),
		}},
		{Name: "writer", Gen: &traffic.Random{
			ClientID: 1, StartB: 1 << 20, WindowB: 1 << 20, Bits: 512, RateGB: 1,
			Count: 400, Write: true, Rng: rand.New(rand.NewSource(10)),
		}},
	}
}

// TestReliabilityEndToEnd: an injected-fault run completes without
// error, reports consistent counters, and streams fault events.
func TestReliabilityEndToEnd(t *testing.T) {
	var events []reliab.FaultEvent
	res, err := RunWithOptions(devCfg(), interleaved(t), faultyOptions(42, &events), faultyClients())
	if err != nil {
		t.Fatal(err)
	}
	rs := res.Reliability
	if rs == nil {
		t.Fatal("Reliability stats missing")
	}
	if rs.InjectedFaults == 0 || rs.WeakCells == 0 {
		t.Fatalf("fault process drew nothing: %+v", rs)
	}
	if rs.FaultyAccesses == 0 {
		t.Fatalf("no faulty accesses observed: %+v", rs)
	}
	sum := rs.Corrected + rs.RetryRecovered + rs.Remapped + rs.Offlined +
		rs.Uncorrected + rs.Miscorrected + rs.Silent
	if sum != rs.FaultyAccesses {
		t.Errorf("outcome counters sum %d != FaultyAccesses %d", sum, rs.FaultyAccesses)
	}
	if int64(len(events)) != rs.FaultyAccesses {
		t.Errorf("observer saw %d events, stats count %d", len(events), rs.FaultyAccesses)
	}
	if rs.SparesTotal != devCfg().Banks*2 {
		t.Errorf("SparesTotal = %d", rs.SparesTotal)
	}
	// Events are time-stamped in service order per the observer
	// contract; timestamps must be non-negative and populated.
	for _, ev := range events {
		if ev.TimeNs < 0 || ev.Client == "" {
			t.Fatalf("malformed event %+v", ev)
		}
		if ev.HardBits == 0 && ev.SoftBits == 0 {
			t.Fatalf("event without any bit errors: %+v", ev)
		}
	}
	// A fault-free control run must not carry stats.
	clean, err := RunWithOptions(devCfg(), interleaved(t), Options{Policy: RoundRobin}, faultyClients())
	if err != nil {
		t.Fatal(err)
	}
	if clean.Reliability != nil {
		t.Error("fault-free run must not report reliability stats")
	}
}

// TestReliabilityDeterminism: the same seed reproduces byte-identical
// defect maps, fault-event streams and statistics.
func TestReliabilityDeterminism(t *testing.T) {
	run := func() (Result, []reliab.FaultEvent) {
		var events []reliab.FaultEvent
		res, err := RunWithOptions(devCfg(), interleaved(t), faultyOptions(7, &events), faultyClients())
		if err != nil {
			t.Fatal(err)
		}
		return res, events
	}
	res1, ev1 := run()
	res2, ev2 := run()
	if !reflect.DeepEqual(res1.Reliability, res2.Reliability) {
		t.Errorf("stats differ:\n%+v\n%+v", res1.Reliability, res2.Reliability)
	}
	if res1.Reliability.DefectFingerprint != res2.Reliability.DefectFingerprint {
		t.Error("defect maps differ under the same seed")
	}
	if !reflect.DeepEqual(ev1, ev2) {
		t.Errorf("event streams differ: %d vs %d events", len(ev1), len(ev2))
	}
	if !reflect.DeepEqual(res1.Offlined, res2.Offlined) {
		t.Error("offlined pages differ")
	}
	// A different seed must give a different fault history (defect maps
	// are fingerprint-distinct with overwhelming probability).
	var ev3 []reliab.FaultEvent
	res3, err := RunWithOptions(devCfg(), interleaved(t), faultyOptions(8, &ev3), faultyClients())
	if err != nil {
		t.Fatal(err)
	}
	if res3.Reliability.DefectFingerprint == res1.Reliability.DefectFingerprint {
		t.Error("different seeds drew identical defect maps")
	}
}

// TestReliabilityTrialsWorkerInvariance: a trial campaign returns
// byte-identical results at 1 worker and N workers.
func TestReliabilityTrialsWorkerInvariance(t *testing.T) {
	campaign := func(workers int) []reliab.TrialResult {
		results, err := reliab.RunTrials(6, workers, 42, func(trial int, seed int64) (reliab.Stats, []reliab.FaultEvent, error) {
			var events []reliab.FaultEvent
			res, err := RunWithOptions(devCfg(), interleaved(t), faultyOptions(seed, &events), faultyClients())
			if err != nil {
				return reliab.Stats{}, nil, err
			}
			return *res.Reliability, events, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return results
	}
	serial := campaign(1)
	parallel := campaign(4)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("campaign results differ between 1 and 4 workers")
	}
	// Trials are seed-distinct.
	seen := map[uint64]bool{}
	for _, r := range serial {
		if seen[r.Stats.DefectFingerprint] {
			t.Fatalf("trial %d reused a defect map", r.Trial)
		}
		seen[r.Stats.DefectFingerprint] = true
	}
}

// TestReliabilityDegradation: spare exhaustion degrades capacity
// gracefully instead of failing the run.
func TestReliabilityDegradation(t *testing.T) {
	// Stuck wordlines on more rows than the bank has spares.
	extra := map[int][]dram.Fault{0: {
		{Kind: dram.WordlineStuck0, Row: 0},
		{Kind: dram.WordlineStuck0, Row: 1},
		{Kind: dram.WordlineStuck0, Row: 2},
	}}
	opt := Options{
		Policy: RoundRobin,
		Reliability: &reliab.Config{
			Seed: 1, ECC: reliab.ECCSECDED, SpareRowsPerBank: 1,
			ExtraFaults: extra,
		},
	}
	// A sequential reader sweeping the first rows of bank 0 under the
	// linear mapping hits every stuck row.
	clients := []Client{{Name: "sweep", Gen: &traffic.Sequential{
		ClientID: 0, Bits: 512, RateGB: 4, Count: 400,
	}}}
	res, err := RunWithOptions(devCfg(), linear(t), opt, clients)
	if err != nil {
		t.Fatal(err)
	}
	rs := res.Reliability
	if rs.Remapped == 0 {
		t.Errorf("no remaps despite stuck rows: %+v", rs)
	}
	if rs.Offlined == 0 || len(res.Offlined) == 0 {
		t.Errorf("spare exhaustion must offline rows: %+v", rs)
	}
	if rs.CapacityLossFrac <= 0 {
		t.Error("capacity loss must be reported")
	}
	if rs.SparesUsed != 1 {
		t.Errorf("SparesUsed = %d, want the bank's whole budget", rs.SparesUsed)
	}
}
