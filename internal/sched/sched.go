// Package sched implements the memory controller of the reproduction:
// arbitration between several memory clients, address mapping, and the
// event-driven service loop over a dram.Device. It measures the gap the
// paper's §4 warns about — "the sustainable bandwidth can be much lower
// than the peak bandwidth" once several clients introduce page misses —
// and the latency/FIFO-depth consequences of the access scheme (§3).
package sched

import (
	"fmt"
	"io"
	"math"

	"edram/internal/dram"
	"edram/internal/mapping"
	"edram/internal/power"
	"edram/internal/reliab"
	"edram/internal/traffic"
	"edram/internal/units"
)

// Policy selects the arbitration scheme.
type Policy int

const (
	// RoundRobin serves clients in rotating order.
	RoundRobin Policy = iota
	// FixedPriority always serves the lowest-index client first.
	FixedPriority
	// OldestFirst serves the globally oldest pending request (FCFS).
	OldestFirst
	// OpenPageFirst prefers requests that hit an open page, falling
	// back to the oldest — the paper's "optimizing the access scheme".
	OpenPageFirst
	// Deadline serves the request whose deadline (issue time plus its
	// client's latency budget) expires first — earliest-deadline-first
	// for mixes of real-time and bulk clients (§3).
	Deadline
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case RoundRobin:
		return "round-robin"
	case FixedPriority:
		return "fixed-priority"
	case OldestFirst:
		return "oldest-first"
	case OpenPageFirst:
		return "open-page-first"
	case Deadline:
		return "deadline"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Client couples a name with a request stream.
type Client struct {
	Name string
	Gen  traffic.Generator
	// LatencyBudgetNs is the client's service-latency budget, used by
	// the Deadline policy (0 = best effort, treated as a very relaxed
	// deadline).
	LatencyBudgetNs float64
}

// ClientResult reports one client's service quality.
type ClientResult struct {
	Name      string
	Stats     traffic.LatencyStats
	BitsMoved int64
	// AchievedGBps is the client's data rate over the whole run.
	AchievedGBps float64
}

// Result is the outcome of one controller run.
type Result struct {
	Policy      Policy
	MappingName string
	Clients     []ClientResult
	// PeakGBps is the device interface peak.
	PeakGBps float64
	// SustainedGBps is total moved data over the makespan.
	SustainedGBps float64
	// SustainedFraction = SustainedGBps / PeakGBps.
	SustainedFraction float64
	// HitRate is the device's open-page hit rate.
	HitRate    float64
	DurationNs float64
	Device     dram.Stats
	// Trace holds the per-request log when Options.Trace was set.
	Trace []TraceEntry
	// Reliability holds the fault-injection counters when
	// Options.Reliability was set; nil on fault-free runs.
	Reliability *ReliabilityStats
	// Offlined lists the pages the graceful-degradation rung took out
	// of service (empty on fault-free or fully-repairable runs).
	Offlined [][2]int
}

// ReliabilityStats is the controller-level view of the reliability
// pipeline's counters.
type ReliabilityStats = reliab.Stats

type clientState struct {
	reqs    []traffic.Request
	next    int // first unserved request
	arrived int // requests with IssueNs <= now (>= next)
	done    []bool
	served  int
	lats    []float64
	maxFIFO int
	bits    int64
}

// head returns the client's oldest unserved, arrived request index.
// markServed keeps next at the first unserved request, so the head is
// a bounds check, not a scan — this sits in every policy's inner loop.
func (st *clientState) head() (int, bool) {
	return st.next, st.next < st.arrived
}

// appendCandidates appends up to window unserved, arrived request
// indices in age order to out (typically a scratch slice reused across
// picks — the per-pick allocation here used to dominate the
// simulator's allocation profile).
func (st *clientState) appendCandidates(out []int, window int) []int {
	n := 0
	for i := st.next; i < st.arrived && n < window; i++ {
		if !st.done[i] {
			out = append(out, i)
			n++
		}
	}
	return out
}

// markServed records completion of request idx and advances the head.
func (st *clientState) markServed(idx int) {
	st.done[idx] = true
	st.served++
	for st.next < len(st.reqs) && st.done[st.next] {
		st.next++
	}
}

// Options configures a controller run beyond the arbitration policy.
type Options struct {
	Policy Policy
	// ClosedPage issues an auto-precharge after every request (the
	// closed-page policy): random mixes avoid the conflict-miss
	// precharge on the critical path, streams lose their open-page
	// hits. Ablated in the E8 companion bench.
	ClosedPage bool
	// ReorderWindow lets the OpenPageFirst arbiter look past each
	// client's head request, FR-FCFS style: among the first
	// ReorderWindow pending requests per client it prefers an
	// open-page hit, falling back to the globally oldest head.
	// 0 or 1 keeps strict per-client FIFO order.
	ReorderWindow int
	// Trace, when true, records one TraceEntry per served request in
	// Result.Trace (issue order).
	Trace bool
	// Observer, when non-nil, is invoked synchronously with the
	// TraceEntry of every served request as it completes — the
	// streaming counterpart of Trace (same hook style as the design
	// explorer's WithObserver). It runs on the simulation goroutine, so
	// it must not block; it sees events in service order.
	Observer func(TraceEntry)
	// Reliability, when non-nil, arms the fault-injection pipeline: a
	// deterministic fault process backs the device with functional
	// arrays, every read is checked under the configured ECC, and
	// faulty accesses climb the detect→retry→remap→degrade ladder.
	Reliability *reliab.Config
	// FaultObserver, when non-nil (and Reliability is armed), receives
	// every runtime FaultEvent in service order — the reliability
	// counterpart of Observer, with the same contract.
	FaultObserver func(reliab.FaultEvent)
}

// TraceEntry is one served request in the command trace.
type TraceEntry struct {
	Client    string
	AddrB     int64
	Bank, Row int
	Write     bool
	IssueNs   float64
	StartNs   float64
	DoneNs    float64
	Hit       bool
}

// Run drains every client's generator and serves the merged load on a
// device built from devCfg, translating addresses through m and
// arbitrating with policy. It returns the full report.
//
// Deprecated: use RunWithOptions, which exposes the full controller
// options (page policy, reorder window, tracing, the per-event
// Observer). Run remains as a positional-argument compatibility shim:
// Run(cfg, m, p, cs) ≡ RunWithOptions(cfg, m, Options{Policy: p}, cs).
func Run(devCfg dram.Config, m mapping.Mapping, policy Policy, clients []Client) (Result, error) {
	return RunWithOptions(devCfg, m, Options{Policy: policy}, clients)
}

// RunWithOptions is Run with full controller options.
func RunWithOptions(devCfg dram.Config, m mapping.Mapping, opt Options, clients []Client) (Result, error) {
	policy := opt.Policy
	if len(clients) == 0 {
		return Result{}, fmt.Errorf("sched: no clients")
	}
	dev, err := dram.New(devCfg)
	if err != nil {
		return Result{}, err
	}
	geo := m.Geometry()
	if geo.Banks != devCfg.Banks || geo.RowsBank != devCfg.RowsPerBank || geo.PageBytes != devCfg.PageBits/8 {
		return Result{}, fmt.Errorf("sched: mapping geometry %+v does not match device %+v", geo, devCfg)
	}

	var ladder *reliab.Ladder
	var degraded *mapping.Degraded
	if opt.Reliability != nil {
		degraded = mapping.NewDegraded(m)
		m = degraded
		ladder, err = reliab.NewLadder(*opt.Reliability, dev, degraded, opt.FaultObserver)
		if err != nil {
			return Result{}, fmt.Errorf("sched: reliability: %w", err)
		}
	}

	window := opt.ReorderWindow
	if window < 1 {
		window = 1
	}
	budgets := make([]float64, len(clients))
	for i, c := range clients {
		budgets[i] = c.LatencyBudgetNs
		if budgets[i] <= 0 {
			budgets[i] = 1e12 // best effort
		}
	}
	states := make([]clientState, len(clients))
	total := 0
	for i, c := range clients {
		states[i].reqs = traffic.Slice(c.Gen)
		states[i].done = make([]bool, len(states[i].reqs))
		states[i].lats = make([]float64, 0, len(states[i].reqs))
		total += len(states[i].reqs)
	}
	if total == 0 {
		return Result{}, fmt.Errorf("sched: all client streams empty")
	}

	now := 0.0
	served := 0
	rrNext := 0
	// Scratch for the OpenPageFirst window scan, reused across picks.
	scratch := make([]int, 0, window)
	var trace []TraceEntry
	if opt.Trace {
		trace = make([]TraceEntry, 0, total)
	}
	beatsOf := func(bits int) int {
		n := units.CeilDiv(bits, devCfg.DataBits)
		if n < 1 {
			n = 1
		}
		return n
	}

	for served < total {
		// Advance arrivals; find the set of ready client heads.
		anyReady := false
		nextArrival := math.Inf(1)
		for i := range states {
			st := &states[i]
			for st.arrived < len(st.reqs) && st.reqs[st.arrived].IssueNs <= now+1e-9 {
				st.arrived++
			}
			if st.next < st.arrived {
				anyReady = true
			} else if st.next < len(st.reqs) && st.reqs[st.next].IssueNs < nextArrival {
				nextArrival = st.reqs[st.next].IssueNs
			}
			// FIFO occupancy: arrived but not yet served.
			if d := st.arrived - st.served; d > st.maxFIFO {
				st.maxFIFO = d
			}
		}
		if !anyReady {
			now = nextArrival
			continue
		}

		pick, reqIdx := choose(policy, states, rrNext, dev, m, window, budgets, scratch)
		if policy == RoundRobin {
			rrNext = (pick + 1) % len(states)
		}
		st := &states[pick]
		req := st.reqs[reqIdx]
		bank, row := m.Map(req.AddrB)
		res, err := dev.Burst(math.Max(now, req.IssueNs), bank, row, beatsOf(req.Bits), req.Write)
		if err != nil {
			return Result{}, fmt.Errorf("sched: serving client %q: %w", clients[pick].Name, err)
		}
		doneNs := res.DoneNs
		if ladder != nil {
			doneNs, err = ladder.AfterAccess(clients[pick].Name, bank, row, req.Write, beatsOf(req.Bits), res)
			if err != nil {
				return Result{}, fmt.Errorf("sched: serving client %q: %w", clients[pick].Name, err)
			}
		}
		st.lats = append(st.lats, doneNs-req.IssueNs)
		st.bits += int64(req.Bits)
		st.markServed(reqIdx)
		served++
		if opt.Trace || opt.Observer != nil {
			e := TraceEntry{
				Client: clients[pick].Name, AddrB: req.AddrB,
				Bank: bank, Row: row, Write: req.Write,
				IssueNs: req.IssueNs, StartNs: res.StartNs, DoneNs: doneNs,
				Hit: res.Hit,
			}
			if opt.Observer != nil {
				opt.Observer(e)
			}
			if opt.Trace {
				trace = append(trace, e)
			}
		}
		if opt.ClosedPage {
			if err := dev.Precharge(doneNs, bank); err != nil {
				return Result{}, err
			}
		}
		if res.StartNs > now {
			now = res.StartNs
		}
	}

	ds := dev.Stats()
	dur := ds.LastDoneNs
	var out Result
	out.Policy = policy
	out.MappingName = m.Name()
	out.PeakGBps = devCfg.PeakBandwidthGBps()
	out.Clients = make([]ClientResult, 0, len(states))
	var totalBits int64
	for i := range states {
		st := &states[i]
		cr := ClientResult{
			Name:      clients[i].Name,
			Stats:     traffic.Summarize(st.lats, st.maxFIFO),
			BitsMoved: st.bits,
		}
		if dur > 0 {
			cr.AchievedGBps = float64(st.bits) / 8 / dur
		}
		totalBits += st.bits
		out.Clients = append(out.Clients, cr)
	}
	if dur > 0 {
		out.SustainedGBps = float64(totalBits) / 8 / dur
	}
	out.SustainedFraction = units.Ratio(out.SustainedGBps, out.PeakGBps)
	out.HitRate = ds.HitRate()
	out.DurationNs = dur
	out.Device = ds
	out.Trace = trace
	if ladder != nil {
		rs := ladder.Stats()
		out.Reliability = &rs
		out.Offlined = degraded.Offlined()
	}
	return out, nil
}

// CoreEnergy summarizes the run's DRAM core energy using the given
// coefficients (activations = misses + empties, plus refresh rounds).
func (r Result) CoreEnergy(ce power.CoreEnergy, pageBits int) power.SimEnergy {
	activates := r.Device.PageMisses + r.Device.PageEmpties
	var bits int64
	for _, c := range r.Clients {
		bits += c.BitsMoved
	}
	return ce.EnergyOfCounts(activates, r.Device.Refreshes, bits, pageBits)
}

// WriteTraceCSV renders the trace as CSV.
func (r Result) WriteTraceCSV(w io.Writer) error {
	if _, err := io.WriteString(w, "client,addr,bank,row,write,issue_ns,start_ns,done_ns,hit\n"); err != nil {
		return err
	}
	for _, e := range r.Trace {
		if _, err := fmt.Fprintf(w, "%s,%d,%d,%d,%t,%.1f,%.1f,%.1f,%t\n",
			e.Client, e.AddrB, e.Bank, e.Row, e.Write, e.IssueNs, e.StartNs, e.DoneNs, e.Hit); err != nil {
			return err
		}
	}
	return nil
}

// choose picks the next (client, request index) among ready requests.
// All policies except OpenPageFirst consider only each client's head;
// OpenPageFirst additionally looks `window` requests deep per client
// (FR-FCFS style) when window > 1, collecting indices into the
// caller-owned scratch slice.
func choose(policy Policy, states []clientState, rrNext int, dev *dram.Device, m mapping.Mapping, window int, budgets []float64, scratch []int) (int, int) {
	n := len(states)
	head := func(i int) (int, bool) {
		return states[i].head()
	}

	switch policy {
	case RoundRobin:
		for k := 0; k < n; k++ {
			i := (rrNext + k) % n
			if idx, ok := head(i); ok {
				return i, idx
			}
		}
	case FixedPriority:
		for i := 0; i < n; i++ {
			if idx, ok := head(i); ok {
				return i, idx
			}
		}
	case OldestFirst:
		best, bestIdx, bestT := -1, 0, math.Inf(1)
		for i := 0; i < n; i++ {
			if idx, ok := head(i); ok && states[i].reqs[idx].IssueNs < bestT {
				best, bestIdx, bestT = i, idx, states[i].reqs[idx].IssueNs
			}
		}
		if best >= 0 {
			return best, bestIdx
		}
	case Deadline:
		best, bestIdx, bestT := -1, 0, math.Inf(1)
		for i := 0; i < n; i++ {
			if idx, ok := head(i); ok {
				dl := states[i].reqs[idx].IssueNs + budgets[i]
				if dl < bestT {
					best, bestIdx, bestT = i, idx, dl
				}
			}
		}
		if best >= 0 {
			return best, bestIdx
		}
	case OpenPageFirst:
		best, bestIdx, bestT := -1, 0, math.Inf(1)
		hitBest, hitIdx, hitT := -1, 0, math.Inf(1)
		for i := 0; i < n; i++ {
			scratch = states[i].appendCandidates(scratch[:0], window)
			for _, idx := range scratch {
				req := &states[i].reqs[idx]
				if idx == states[i].next && req.IssueNs < bestT {
					best, bestIdx, bestT = i, idx, req.IssueNs
				}
				bank, row := m.Map(req.AddrB)
				if dev.OpenRow(bank) == row && req.IssueNs < hitT {
					hitBest, hitIdx, hitT = i, idx, req.IssueNs
				}
			}
		}
		if hitBest >= 0 {
			return hitBest, hitIdx
		}
		if best >= 0 {
			return best, bestIdx
		}
	}
	// Fallback: first ready client (callers guarantee one exists).
	for i := 0; i < n; i++ {
		if idx, ok := head(i); ok {
			return i, idx
		}
	}
	return 0, 0
}
