package sched

import (
	"math/rand"
	"testing"

	"edram/internal/traffic"
)

func TestClosedPageHurtsStreams(t *testing.T) {
	// A pure stream lives on open-page hits: closing the page after
	// every access must cost bandwidth.
	mk := func() []Client {
		return []Client{seqClient(0, "stream", 0, 5, 1200)}
	}
	open, err := RunWithOptions(devCfg(), interleaved(t), Options{Policy: RoundRobin}, mk())
	if err != nil {
		t.Fatal(err)
	}
	closed, err := RunWithOptions(devCfg(), interleaved(t), Options{Policy: RoundRobin, ClosedPage: true}, mk())
	if err != nil {
		t.Fatal(err)
	}
	if closed.SustainedGBps >= open.SustainedGBps {
		t.Fatalf("closed page must hurt streaming: %.2f vs %.2f GB/s",
			closed.SustainedGBps, open.SustainedGBps)
	}
	if closed.HitRate > 0.01 {
		t.Errorf("closed-page hit rate %.3f should be ~0", closed.HitRate)
	}
	if open.HitRate < 0.9 {
		t.Errorf("open-page stream hit rate %.2f too low", open.HitRate)
	}
}

func TestClosedPageHelpsRandomMix(t *testing.T) {
	// Random single-access traffic never reuses a page: with the page
	// closed eagerly, the next access pays only tRP-overlapped ACT
	// instead of a serialized PRE+ACT conflict.
	mk := func() []Client {
		return []Client{
			{Name: "r0", Gen: &traffic.Random{ClientID: 0, WindowB: 2 << 20, Bits: 64, RateGB: 2, Count: 1200, Rng: rand.New(rand.NewSource(21))}},
			{Name: "r1", Gen: &traffic.Random{ClientID: 1, StartB: 2 << 20, WindowB: 2 << 20, Bits: 64, RateGB: 2, Count: 1200, Rng: rand.New(rand.NewSource(22))}},
		}
	}
	open, err := RunWithOptions(devCfg(), interleaved(t), Options{Policy: RoundRobin}, mk())
	if err != nil {
		t.Fatal(err)
	}
	closed, err := RunWithOptions(devCfg(), interleaved(t), Options{Policy: RoundRobin, ClosedPage: true}, mk())
	if err != nil {
		t.Fatal(err)
	}
	if closed.SustainedGBps <= open.SustainedGBps {
		t.Fatalf("closed page must help a no-locality mix: %.3f vs %.3f GB/s",
			closed.SustainedGBps, open.SustainedGBps)
	}
	// Under closed-page every access sees an empty bank.
	if closed.Device.PageMisses != 0 {
		t.Errorf("closed-page run saw %d conflict misses", closed.Device.PageMisses)
	}
}

func TestRunIsRunWithDefaultOptions(t *testing.T) {
	mk := func() []Client { return []Client{seqClient(0, "a", 0, 1, 200)} }
	a, err := Run(devCfg(), interleaved(t), OpenPageFirst, mk())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunWithOptions(devCfg(), interleaved(t), Options{Policy: OpenPageFirst}, mk())
	if err != nil {
		t.Fatal(err)
	}
	if a.SustainedGBps != b.SustainedGBps || a.HitRate != b.HitRate {
		t.Error("Run must equal RunWithOptions with default options")
	}
}
