package sched

import (
	"testing"

	"edram/internal/traffic"
)

// The arbitration helpers run once (or once per client) per served
// request; RunWithOptions preallocates st.lats and reuses one candidate
// scratch slice across picks precisely so these paths stay
// allocation-free. The guards pin that at zero.

var (
	sinkIdx  int
	sinkOK   bool
	sinkInts []int
)

func testState(n int) clientState {
	st := clientState{
		reqs: make([]traffic.Request, n),
		done: make([]bool, n),
	}
	st.arrived = n * 3 / 4
	return st
}

func TestHeadNoAllocs(t *testing.T) {
	st := testState(64)
	if n := testing.AllocsPerRun(1000, func() {
		sinkIdx, sinkOK = st.head()
	}); n != 0 {
		t.Fatalf("head allocates %v allocs/op, want 0", n)
	}
	if !sinkOK {
		t.Fatal("head found no arrived request")
	}
}

func TestAppendCandidatesReusedScratchNoAllocs(t *testing.T) {
	st := testState(64)
	for i := 0; i < len(st.done); i += 3 { // holes make the scan walk
		st.done[i] = true
	}
	scratch := make([]int, 0, 8)
	if n := testing.AllocsPerRun(1000, func() {
		scratch = st.appendCandidates(scratch[:0], 8)
		sinkInts = scratch
	}); n != 0 {
		t.Fatalf("appendCandidates with reused scratch allocates %v allocs/op, want 0", n)
	}
	if len(sinkInts) != 8 {
		t.Fatalf("expected a full window of 8 candidates, got %d", len(sinkInts))
	}
}

func TestMarkServedNoAllocs(t *testing.T) {
	st := testState(4096)
	st.arrived = len(st.reqs)
	idx := 0
	if n := testing.AllocsPerRun(1000, func() {
		st.markServed(idx)
		idx++
	}); n != 0 {
		t.Fatalf("markServed allocates %v allocs/op, want 0", n)
	}
	if st.next != idx {
		t.Fatalf("markServed left next=%d after serving prefix of %d", st.next, idx)
	}
}
