package sched

import (
	"math/rand"
	"testing"

	"edram/internal/traffic"
)

// reorderMix is a client whose head often blocks on a conflicting row
// while a slightly younger request would hit the open page: it
// alternates between two buffers that share banks under the interleaved
// mapping (plus a random bulk client).
func reorderMix(seed int64) []Client {
	return []Client{
		{Name: "bidir", Gen: &traffic.Alternating{ClientID: 0, BaseA: 0, BaseB: 1 << 20, Bits: 64, RateGB: 3, Count: 1500}},
		{Name: "rnd", Gen: &traffic.Random{ClientID: 1, StartB: 4 << 20, WindowB: 1 << 20, Bits: 64, RateGB: 3, Count: 1500, Rng: rand.New(rand.NewSource(seed))}},
	}
}

func TestReorderWindowImprovesHitRate(t *testing.T) {
	inOrder, err := RunWithOptions(devCfg(), interleaved(t), Options{Policy: OpenPageFirst}, reorderMix(5))
	if err != nil {
		t.Fatal(err)
	}
	reorder, err := RunWithOptions(devCfg(), interleaved(t), Options{Policy: OpenPageFirst, ReorderWindow: 8}, reorderMix(5))
	if err != nil {
		t.Fatal(err)
	}
	if reorder.HitRate < inOrder.HitRate {
		t.Errorf("reordering must not lower hit rate: %.3f vs %.3f",
			reorder.HitRate, inOrder.HitRate)
	}
	if reorder.SustainedGBps < inOrder.SustainedGBps {
		t.Errorf("reordering must not lower bandwidth: %.3f vs %.3f",
			reorder.SustainedGBps, inOrder.SustainedGBps)
	}
}

func TestReorderWindowServesEverything(t *testing.T) {
	for _, w := range []int{0, 1, 4, 64} {
		res, err := RunWithOptions(devCfg(), interleaved(t),
			Options{Policy: OpenPageFirst, ReorderWindow: w}, reorderMix(6))
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for _, c := range res.Clients {
			total += c.Stats.Count
		}
		if total != 3000 {
			t.Errorf("window %d served %d of 3000", w, total)
		}
	}
}

func TestReorderWindowOneMatchesDefault(t *testing.T) {
	a, err := RunWithOptions(devCfg(), interleaved(t), Options{Policy: OpenPageFirst}, reorderMix(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunWithOptions(devCfg(), interleaved(t), Options{Policy: OpenPageFirst, ReorderWindow: 1}, reorderMix(7))
	if err != nil {
		t.Fatal(err)
	}
	if a.SustainedGBps != b.SustainedGBps || a.HitRate != b.HitRate {
		t.Error("window 1 must match strict in-order behaviour")
	}
}

func TestReorderOnlyAffectsOpenPagePolicy(t *testing.T) {
	a, err := RunWithOptions(devCfg(), interleaved(t), Options{Policy: RoundRobin}, reorderMix(8))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunWithOptions(devCfg(), interleaved(t), Options{Policy: RoundRobin, ReorderWindow: 16}, reorderMix(8))
	if err != nil {
		t.Fatal(err)
	}
	if a.SustainedGBps != b.SustainedGBps {
		t.Error("reorder window must be inert for head-only policies")
	}
}
