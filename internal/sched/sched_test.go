package sched

import (
	"math/rand"
	"strings"
	"testing"

	"edram/internal/dram"
	"edram/internal/mapping"
	"edram/internal/power"
	"edram/internal/tech"
	"edram/internal/traffic"
)

func devCfg() dram.Config {
	return dram.Config{
		Banks:       4,
		RowsPerBank: 1024,
		PageBits:    2048, // 256 B pages
		DataBits:    64,
		Timing:      tech.PC100(),
	}
}

func geo() mapping.Geometry {
	return mapping.Geometry{Banks: 4, RowsBank: 1024, PageBytes: 256}
}

func interleaved(t *testing.T) mapping.Mapping {
	t.Helper()
	m, err := mapping.NewBankInterleaved(geo())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func linear(t *testing.T) mapping.Mapping {
	t.Helper()
	m, err := mapping.NewLinear(geo())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func seqClient(id int, name string, startB int64, rate float64, n int) Client {
	return Client{Name: name, Gen: &traffic.Sequential{
		ClientID: id, StartB: startB, Bits: 64, RateGB: rate, Count: n}}
}

func TestRunErrors(t *testing.T) {
	if _, err := Run(devCfg(), interleaved(t), RoundRobin, nil); err == nil {
		t.Error("no clients must error")
	}
	empty := Client{Name: "empty", Gen: &traffic.Sequential{Bits: 64, RateGB: 1, Count: 0}}
	// Count 0 means unbounded in Sequential, so build a drained one.
	g := &traffic.Sequential{Bits: 64, RateGB: 1, Count: 1}
	g.Next()
	empty.Gen = g
	if _, err := Run(devCfg(), interleaved(t), RoundRobin, []Client{empty}); err == nil {
		t.Error("empty streams must error")
	}
	bad := devCfg()
	bad.Banks = 2 // mismatched mapping
	if _, err := Run(bad, interleaved(t), RoundRobin, []Client{seqClient(0, "a", 0, 1, 10)}); err == nil {
		t.Error("geometry mismatch must error")
	}
	broken := devCfg()
	broken.Timing.TCKns = 0
	if _, err := Run(broken, interleaved(t), RoundRobin, []Client{seqClient(0, "a", 0, 1, 10)}); err == nil {
		t.Error("invalid device must error")
	}
}

func TestSingleStreamNearPeak(t *testing.T) {
	// One sequential client demanding more than peak must sustain close
	// to the device peak (page hits dominate).
	res, err := Run(devCfg(), interleaved(t), RoundRobin,
		[]Client{seqClient(0, "stream", 0, 10, 2000)})
	if err != nil {
		t.Fatal(err)
	}
	if res.SustainedFraction < 0.80 {
		t.Fatalf("sequential stream sustains only %.0f%% of peak", 100*res.SustainedFraction)
	}
	if res.HitRate < 0.9 {
		t.Errorf("sequential hit rate %.2f too low", res.HitRate)
	}
}

func TestMultiClientBelowPeak(t *testing.T) {
	// Paper §4: several clients introduce page misses, so sustained
	// bandwidth drops well below peak. Three random clients in distinct
	// bank-0-heavy regions under a *linear* mapping thrash pages.
	clients := []Client{
		{Name: "r0", Gen: &traffic.Random{ClientID: 0, StartB: 0, WindowB: 64 << 10, Bits: 64, RateGB: 3, Count: 600, Rng: rand.New(rand.NewSource(1))}},
		{Name: "r1", Gen: &traffic.Random{ClientID: 1, StartB: 64 << 10, WindowB: 64 << 10, Bits: 64, RateGB: 3, Count: 600, Rng: rand.New(rand.NewSource(2))}},
		{Name: "r2", Gen: &traffic.Random{ClientID: 2, StartB: 128 << 10, WindowB: 64 << 10, Bits: 64, RateGB: 3, Count: 600, Rng: rand.New(rand.NewSource(3))}},
	}
	res, err := Run(devCfg(), linear(t), RoundRobin, clients)
	if err != nil {
		t.Fatal(err)
	}
	if res.SustainedFraction > 0.6 {
		t.Fatalf("random multi-client mix sustains %.0f%%; expected well below peak", 100*res.SustainedFraction)
	}
	if res.HitRate > 0.5 {
		t.Errorf("hit rate %.2f suspiciously high for random mix", res.HitRate)
	}
}

func TestInterleavingBeatsLinearForPageStrides(t *testing.T) {
	// One access per page (stride = page size): under the linear
	// mapping every access opens a new row in the same bank and pays
	// the full tRC; bank interleaving spreads consecutive pages over
	// all banks so activations overlap.
	mk := func() []Client {
		return []Client{{Name: "stride", Gen: &traffic.Strided{
			StrideB: 256, Bits: 64, RateGB: 2, Count: 800}}}
	}
	lin, err := Run(devCfg(), linear(t), RoundRobin, mk())
	if err != nil {
		t.Fatal(err)
	}
	il, err := Run(devCfg(), interleaved(t), RoundRobin, mk())
	if err != nil {
		t.Fatal(err)
	}
	if il.SustainedGBps <= lin.SustainedGBps {
		t.Fatalf("interleaved (%.2f GB/s) must beat linear (%.2f GB/s)",
			il.SustainedGBps, lin.SustainedGBps)
	}
}

func TestFixedPriorityProtectsClient0(t *testing.T) {
	mk := func() []Client {
		return []Client{
			{Name: "hot", Gen: &traffic.Random{ClientID: 0, WindowB: 256 << 10, Bits: 64, RateGB: 1, Count: 400, Rng: rand.New(rand.NewSource(4))}},
			{Name: "bulk", Gen: &traffic.Random{ClientID: 1, StartB: 256 << 10, WindowB: 256 << 10, Bits: 64, RateGB: 4, Count: 1600, Rng: rand.New(rand.NewSource(5))}},
		}
	}
	rr, err := Run(devCfg(), interleaved(t), RoundRobin, mk())
	if err != nil {
		t.Fatal(err)
	}
	fp, err := Run(devCfg(), interleaved(t), FixedPriority, mk())
	if err != nil {
		t.Fatal(err)
	}
	if fp.Clients[0].Stats.P99Ns > rr.Clients[0].Stats.P99Ns {
		t.Errorf("priority must not worsen client 0 p99: %.0f vs %.0f",
			fp.Clients[0].Stats.P99Ns, rr.Clients[0].Stats.P99Ns)
	}
}

func TestOpenPagePolicyRaisesHitRate(t *testing.T) {
	// Two streaming clients: open-page-first batches hits within the
	// open row instead of ping-ponging between clients' rows.
	mk := func() []Client {
		return []Client{
			seqClient(0, "a", 0, 2, 800),
			seqClient(1, "b", 512, 2, 800), // same bank region under linear
		}
	}
	rr, err := Run(devCfg(), linear(t), RoundRobin, mk())
	if err != nil {
		t.Fatal(err)
	}
	op, err := Run(devCfg(), linear(t), OpenPageFirst, mk())
	if err != nil {
		t.Fatal(err)
	}
	if op.HitRate < rr.HitRate {
		t.Errorf("open-page policy must not lower hit rate: %.3f vs %.3f", op.HitRate, rr.HitRate)
	}
	if op.SustainedGBps < rr.SustainedGBps {
		t.Errorf("open-page policy must not lower bandwidth: %.2f vs %.2f",
			op.SustainedGBps, rr.SustainedGBps)
	}
}

func TestOldestFirstIsFIFO(t *testing.T) {
	res, err := Run(devCfg(), interleaved(t), OldestFirst, []Client{
		seqClient(0, "a", 0, 1, 300),
		seqClient(1, "b", 1<<20, 1, 300),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Clients[0].Stats.Count != 300 || res.Clients[1].Stats.Count != 300 {
		t.Error("all requests must be served")
	}
}

func TestResultAccounting(t *testing.T) {
	res, err := Run(devCfg(), interleaved(t), RoundRobin, []Client{seqClient(0, "a", 0, 1, 100)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Clients[0].BitsMoved != 100*64 {
		t.Errorf("bits moved = %d", res.Clients[0].BitsMoved)
	}
	if res.DurationNs <= 0 || res.SustainedGBps <= 0 {
		t.Error("duration and bandwidth must be positive")
	}
	if res.Device.Accesses() != 100 {
		t.Errorf("device served %d accesses, want 100", res.Device.Accesses())
	}
	if res.MappingName != "bank-interleaved" {
		t.Error("mapping name lost")
	}
	if res.Clients[0].AchievedGBps <= 0 {
		t.Error("achieved bandwidth must be positive")
	}
}

func TestFIFODepthGrowsWithContention(t *testing.T) {
	// A streaming client alone has a shallow FIFO; squeezed by three
	// heavy random clients, its worst-case occupancy grows.
	solo, err := Run(devCfg(), interleaved(t), RoundRobin, []Client{seqClient(0, "v", 0, 1, 500)})
	if err != nil {
		t.Fatal(err)
	}
	noisy, err := Run(devCfg(), interleaved(t), RoundRobin, []Client{
		seqClient(0, "v", 0, 1, 500),
		{Name: "n1", Gen: &traffic.Random{ClientID: 1, StartB: 1 << 20, WindowB: 1 << 20, Bits: 512, RateGB: 3, Count: 800, Rng: rand.New(rand.NewSource(8))}},
		{Name: "n2", Gen: &traffic.Random{ClientID: 2, StartB: 2 << 20, WindowB: 1 << 20, Bits: 512, RateGB: 3, Count: 800, Rng: rand.New(rand.NewSource(9))}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if noisy.Clients[0].Stats.MaxFIFODepth < solo.Clients[0].Stats.MaxFIFODepth {
		t.Errorf("contention must not shrink FIFO: %d vs %d",
			noisy.Clients[0].Stats.MaxFIFODepth, solo.Clients[0].Stats.MaxFIFODepth)
	}
	if noisy.Clients[0].Stats.P99Ns <= solo.Clients[0].Stats.P99Ns {
		t.Errorf("contention must raise p99: %.0f vs %.0f",
			noisy.Clients[0].Stats.P99Ns, solo.Clients[0].Stats.P99Ns)
	}
}

func TestPolicyStrings(t *testing.T) {
	for p, want := range map[Policy]string{
		RoundRobin: "round-robin", FixedPriority: "fixed-priority",
		OldestFirst: "oldest-first", OpenPageFirst: "open-page-first",
	} {
		if p.String() != want {
			t.Errorf("%d -> %q", int(p), p.String())
		}
	}
	if !strings.Contains(Policy(9).String(), "9") {
		t.Error("unknown policy must embed number")
	}
}

func TestAllPoliciesServeEverything(t *testing.T) {
	for _, p := range []Policy{RoundRobin, FixedPriority, OldestFirst, OpenPageFirst} {
		res, err := Run(devCfg(), interleaved(t), p, []Client{
			seqClient(0, "a", 0, 1, 200),
			{Name: "r", Gen: &traffic.Random{ClientID: 1, StartB: 1 << 20, WindowB: 1 << 20, Bits: 128, RateGB: 1, Count: 200, Rng: rand.New(rand.NewSource(11))}},
		})
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		total := 0
		for _, c := range res.Clients {
			total += c.Stats.Count
		}
		if total != 400 {
			t.Errorf("%v served %d of 400", p, total)
		}
	}
}

func TestTraceRecording(t *testing.T) {
	res, err := RunWithOptions(devCfg(), interleaved(t),
		Options{Policy: RoundRobin, Trace: true},
		[]Client{seqClient(0, "a", 0, 1, 50)})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) != 50 {
		t.Fatalf("trace entries = %d, want 50", len(res.Trace))
	}
	for i, e := range res.Trace {
		if e.Client != "a" || e.DoneNs < e.StartNs || e.StartNs < e.IssueNs-1e-9 {
			t.Fatalf("entry %d inconsistent: %+v", i, e)
		}
	}
	var sb strings.Builder
	if err := res.WriteTraceCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 51 { // header + 50
		t.Errorf("csv lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "client,addr,bank") {
		t.Error("csv header wrong")
	}
	// Without the option, no trace is kept.
	res2, err := Run(devCfg(), interleaved(t), RoundRobin, []Client{seqClient(0, "a", 0, 1, 10)})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Trace != nil {
		t.Error("trace must be nil when not requested")
	}
}

func TestDeadlinePolicyProtectsRealTimeClient(t *testing.T) {
	mk := func() []Client {
		return []Client{
			{Name: "bulk", Gen: &traffic.Random{ClientID: 0, WindowB: 512 << 10, Bits: 64, RateGB: 3, Count: 1200, Rng: rand.New(rand.NewSource(14))}},
			{Name: "rt", LatencyBudgetNs: 200, Gen: &traffic.Sequential{ClientID: 1, StartB: 1 << 20, Bits: 64, RateGB: 0.5, Count: 600}},
		}
	}
	rr, err := Run(devCfg(), interleaved(t), RoundRobin, mk())
	if err != nil {
		t.Fatal(err)
	}
	dl, err := Run(devCfg(), interleaved(t), Deadline, mk())
	if err != nil {
		t.Fatal(err)
	}
	// The real-time client (index 1) must see better p99 under EDF.
	if dl.Clients[1].Stats.P99Ns > rr.Clients[1].Stats.P99Ns {
		t.Errorf("deadline policy must protect the budgeted client: %.0f vs %.0f",
			dl.Clients[1].Stats.P99Ns, rr.Clients[1].Stats.P99Ns)
	}
	// And still serve everything.
	if dl.Clients[0].Stats.Count != 1200 || dl.Clients[1].Stats.Count != 600 {
		t.Error("deadline policy dropped requests")
	}
	if Deadline.String() != "deadline" {
		t.Error("policy string wrong")
	}
}

func TestResultCoreEnergy(t *testing.T) {
	res, err := Run(devCfg(), interleaved(t), RoundRobin, []Client{seqClient(0, "a", 0, 1, 200)})
	if err != nil {
		t.Fatal(err)
	}
	ce := power.DefaultCoreEnergy()
	e := res.CoreEnergy(ce, devCfg().PageBits)
	if e.TotalPJ <= 0 || e.PJPerBit <= 0 {
		t.Fatalf("energy must be positive: %+v", e)
	}
	// A thrashing run (random, linear mapping) must cost more pJ/bit.
	thrash, err := Run(devCfg(), linear(t), RoundRobin, []Client{
		{Name: "r", Gen: &traffic.Random{WindowB: 16 << 20, Bits: 64, RateGB: 1, Count: 200, Rng: rand.New(rand.NewSource(2))}},
	})
	if err != nil {
		t.Fatal(err)
	}
	te := thrash.CoreEnergy(ce, devCfg().PageBits)
	if te.PJPerBit <= e.PJPerBit {
		t.Errorf("thrashing pJ/bit %.1f must exceed streaming %.1f", te.PJPerBit, e.PJPerBit)
	}
}

// Conservation matrix: every policy x option combination serves every
// request exactly once and moves the same number of bits.
func TestConservationMatrix(t *testing.T) {
	mk := func() []Client {
		return []Client{
			seqClient(0, "a", 0, 1.5, 300),
			{Name: "b", LatencyBudgetNs: 400, Gen: &traffic.Strided{ClientID: 1, StartB: 1 << 20, StrideB: 256, LimitB: 1 << 20, Bits: 64, RateGB: 1, Count: 300}},
			{Name: "c", Gen: &traffic.Random{ClientID: 2, StartB: 4 << 20, WindowB: 1 << 20, Bits: 64, RateGB: 1, Count: 300, Rng: rand.New(rand.NewSource(77))}},
		}
	}
	wantBits := int64(900 * 64)
	for _, pol := range []Policy{RoundRobin, FixedPriority, OldestFirst, OpenPageFirst, Deadline} {
		for _, closed := range []bool{false, true} {
			for _, win := range []int{1, 4} {
				opt := Options{Policy: pol, ClosedPage: closed, ReorderWindow: win}
				res, err := RunWithOptions(devCfg(), interleaved(t), opt, mk())
				if err != nil {
					t.Fatalf("%v/%v/%d: %v", pol, closed, win, err)
				}
				var bits int64
				total := 0
				for _, c := range res.Clients {
					bits += c.BitsMoved
					total += c.Stats.Count
				}
				if bits != wantBits || total != 900 {
					t.Fatalf("%v/closed=%v/win=%d: served %d requests, %d bits",
						pol, closed, win, total, bits)
				}
			}
		}
	}
}
