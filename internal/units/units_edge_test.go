package units

import "testing"

// The division helpers promise "never panic; 0 for degenerate
// denominators" so sweep code can tabulate corner rows without
// branching. These tests pin the negative-input side of that contract.

func TestDivisionHelpersNegativeDenominators(t *testing.T) {
	for _, mhz := range []float64{-0.001, -1, -1e9} {
		if got := MHzToNs(mhz); got != 0 {
			t.Errorf("MHzToNs(%v) = %v, want 0", mhz, got)
		}
	}
	for _, ns := range []float64{-0.001, -1, -1e9} {
		if got := NsToMHz(ns); got != 0 {
			t.Errorf("NsToMHz(%v) = %v, want 0", ns, got)
		}
	}
	for _, size := range []float64{-0.001, -4, -1e9} {
		if got := FillFrequencyHz(3.2, size); got != 0 {
			t.Errorf("FillFrequencyHz(3.2, %v) = %v, want 0", size, got)
		}
	}
}

func TestRatioSigns(t *testing.T) {
	// Ratio guards only the b == 0 case; negative denominators divide
	// normally (a signed ratio is meaningful, a divide-by-zero is not).
	cases := []struct{ a, b, want float64 }{
		{1, 0, 0},
		{-1, 0, 0},
		{0, 0, 0},
		{1, -2, -0.5},
		{-4, -2, 2},
		{0, -2, 0},
	}
	for _, c := range cases {
		if got := Ratio(c.a, c.b); got != c.want {
			t.Errorf("Ratio(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestCeilDivNegativeDivisorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("CeilDiv with negative divisor must panic")
		}
	}()
	CeilDiv(10, -3)
}

func TestMbitToBitsHalfBoundaries(t *testing.T) {
	// mbit values chosen so mbit*Mbit lands exactly on x.5 bits; the
	// helper rounds half away from zero in both directions. (The old
	// int64(x+0.5) form rounded -1.5 to -1.)
	cases := []struct {
		bits float64 // exact bit count before rounding
		want int64
	}{
		{1.5, 2},
		{2.5, 3},
		{-1.5, -2},
		{-2.5, -3},
		{0.5, 1},
		{-0.5, -1},
	}
	for _, c := range cases {
		mbit := c.bits / Mbit
		if got := MbitToBits(mbit); got != c.want {
			t.Errorf("MbitToBits(%v bits) = %d, want %d", c.bits, got, c.want)
		}
	}
}

func TestMbitToBitsWholeValues(t *testing.T) {
	for _, mbit := range []float64{0, 1, 4, 64, 128} {
		want := int64(mbit) * Mbit
		if got := MbitToBits(mbit); got != want {
			t.Errorf("MbitToBits(%v) = %d, want %d", mbit, got, want)
		}
	}
}
