// Package units defines the physical-unit conventions used throughout the
// eDRAM trade-off models and a small set of helpers for converting and
// formatting quantities.
//
// Conventions (all quantities are float64 unless stated otherwise):
//
//	time        ns      (nanoseconds)
//	frequency   MHz
//	capacity    Mbit    (1 Mbit = 2^20 bits) unless a name says otherwise
//	bandwidth   GBps    (gigabytes per second, 10^9 bytes)
//	area        mm2     (square millimetres)
//	power       mW      (milliwatts)
//	energy      pJ      (picojoules)
//	voltage     V
//	capacitance pF
//	length      mm
//	money       USD
//
// Functions in this package never panic on zero inputs; division helpers
// return 0 for a 0 denominator so that sweep code can tabulate degenerate
// corners without special-casing them.
package units

import (
	"fmt"
	"math"
)

// Bit-capacity constants, in bits.
const (
	Kbit = 1 << 10 // 1024 bits
	Mbit = 1 << 20 // 1048576 bits
	Gbit = 1 << 30
)

// Byte-capacity constants, in bytes.
const (
	KB = 1 << 10
	MB = 1 << 20
	GB = 1 << 30
)

// BitsToMbit converts a bit count to Mbit.
func BitsToMbit(bits int64) float64 { return float64(bits) / Mbit }

// MbitToBits converts Mbit to a bit count, rounding half away from zero
// (the +0.5 trick would round negative halves the wrong way).
func MbitToBits(mbit float64) int64 { return int64(math.Round(mbit * Mbit)) }

// BytesToMbit converts a byte count to Mbit.
func BytesToMbit(bytes int64) float64 { return float64(bytes*8) / Mbit }

// MHzToNs returns the clock period in ns for a frequency in MHz.
// A zero or negative frequency yields 0.
func MHzToNs(mhz float64) float64 {
	if mhz <= 0 {
		return 0
	}
	return 1e3 / mhz
}

// NsToMHz returns the frequency in MHz for a period in ns.
// A zero or negative period yields 0.
func NsToMHz(ns float64) float64 {
	if ns <= 0 {
		return 0
	}
	return 1e3 / ns
}

// BandwidthGBps computes bandwidth in GB/s from a bus width in bits and a
// transfer rate in MHz (one transfer per cycle).
func BandwidthGBps(widthBits int, mhz float64) float64 {
	return float64(widthBits) / 8 * mhz * 1e6 / 1e9
}

// FillFrequencyHz is the paper's "fill frequency" metric: the number of
// times per second a memory of the given size can be completely refilled
// at the given bandwidth (§1, footnote 2). Bandwidth is in GB/s, size in
// Mbit. Zero size yields 0.
func FillFrequencyHz(bandwidthGBps float64, sizeMbit float64) float64 {
	if sizeMbit <= 0 {
		return 0
	}
	bitsPerSecond := bandwidthGBps * 1e9 * 8
	return bitsPerSecond / (sizeMbit * Mbit)
}

// Ratio returns a/b, or 0 when b == 0. It exists so that sweep tables can
// include degenerate corners without branching at every call site.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// Clamp limits v to [lo, hi]. If lo > hi the arguments are swapped.
func Clamp(v, lo, hi float64) float64 {
	if lo > hi {
		lo, hi = hi, lo
	}
	switch {
	case v < lo:
		return lo
	case v > hi:
		return hi
	default:
		return v
	}
}

// CeilDiv returns ceil(a/b) for positive integers. It panics if b <= 0.
func CeilDiv(a, b int) int {
	if b <= 0 {
		panic(fmt.Sprintf("units.CeilDiv: non-positive divisor %d", b))
	}
	if a <= 0 {
		return 0
	}
	return (a + b - 1) / b
}

// NextPow2 returns the smallest power of two >= n (and 1 for n <= 1).
func NextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// IsPow2 reports whether n is a positive power of two.
func IsPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// Log2 returns floor(log2(n)) for n >= 1, and 0 for n < 1.
func Log2(n int) int {
	l := 0
	for n > 1 {
		n >>= 1
		l++
	}
	return l
}

// FormatMbit renders a capacity in Mbit with a sensible unit suffix.
func FormatMbit(mbit float64) string {
	switch {
	case mbit >= 1024:
		return fmt.Sprintf("%.2f Gbit", mbit/1024)
	case mbit >= 1:
		return fmt.Sprintf("%.2f Mbit", mbit)
	default:
		return fmt.Sprintf("%.0f Kbit", mbit*1024)
	}
}

// FormatGBps renders a bandwidth in GB/s, falling back to MB/s below 1.
func FormatGBps(gbps float64) string {
	if gbps >= 1 {
		return fmt.Sprintf("%.2f GB/s", gbps)
	}
	return fmt.Sprintf("%.1f MB/s", gbps*1000)
}
