package units

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestBitsToMbitRoundTrip(t *testing.T) {
	cases := []int64{0, 1, Kbit, Mbit, 4 * Mbit, 128 * Mbit, Gbit}
	for _, bits := range cases {
		got := MbitToBits(BitsToMbit(bits))
		if got != bits {
			t.Errorf("round trip %d bits -> %d", bits, got)
		}
	}
}

func TestMHzNsInverse(t *testing.T) {
	for _, mhz := range []float64{50, 100, 143, 150, 1000} {
		ns := MHzToNs(mhz)
		back := NsToMHz(ns)
		if !almostEqual(back, mhz, 1e-9) {
			t.Errorf("MHz %v -> ns %v -> MHz %v", mhz, ns, back)
		}
	}
}

func TestMHzToNsZero(t *testing.T) {
	if MHzToNs(0) != 0 || MHzToNs(-5) != 0 {
		t.Error("non-positive frequency must yield 0 period")
	}
	if NsToMHz(0) != 0 || NsToMHz(-1) != 0 {
		t.Error("non-positive period must yield 0 frequency")
	}
}

func TestBandwidthGBps(t *testing.T) {
	// 256 bits at 125 MHz = 32 bytes * 125e6 = 4e9 B/s = 4 GB/s.
	got := BandwidthGBps(256, 125)
	if !almostEqual(got, 4.0, 1e-9) {
		t.Errorf("BandwidthGBps(256,125) = %v, want 4", got)
	}
	// A discrete SDRAM: 16 bits at 100 MHz = 0.2 GB/s.
	got = BandwidthGBps(16, 100)
	if !almostEqual(got, 0.2, 1e-9) {
		t.Errorf("BandwidthGBps(16,100) = %v, want 0.2", got)
	}
}

func TestFillFrequency(t *testing.T) {
	// Paper §1: a 4-Mbit eDRAM with a 256-bit interface fills far more
	// often per second than a 64-Mbit discrete system with the same
	// bandwidth.
	bw := BandwidthGBps(256, 100) // 3.2 GB/s
	small := FillFrequencyHz(bw, 4)
	large := FillFrequencyHz(bw, 64)
	if small <= large {
		t.Fatalf("fill frequency must fall with size: %v vs %v", small, large)
	}
	if !almostEqual(small/large, 16, 1e-9) {
		t.Errorf("4 vs 64 Mbit at equal BW should differ 16x, got %v", small/large)
	}
	if FillFrequencyHz(bw, 0) != 0 {
		t.Error("zero size must yield 0 fill frequency")
	}
}

func TestRatio(t *testing.T) {
	if Ratio(4, 2) != 2 {
		t.Error("Ratio(4,2) != 2")
	}
	if Ratio(1, 0) != 0 {
		t.Error("Ratio by zero must be 0")
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 3) != 3 || Clamp(-1, 0, 3) != 0 || Clamp(2, 0, 3) != 2 {
		t.Error("Clamp basic cases failed")
	}
	if Clamp(2, 3, 0) != 2 {
		t.Error("Clamp must swap reversed bounds")
	}
}

func TestCeilDiv(t *testing.T) {
	cases := []struct{ a, b, want int }{
		{0, 4, 0}, {1, 4, 1}, {4, 4, 1}, {5, 4, 2}, {-3, 4, 0},
	}
	for _, c := range cases {
		if got := CeilDiv(c.a, c.b); got != c.want {
			t.Errorf("CeilDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("CeilDiv with non-positive divisor must panic")
		}
	}()
	CeilDiv(1, 0)
}

func TestPow2Helpers(t *testing.T) {
	if NextPow2(0) != 1 || NextPow2(1) != 1 || NextPow2(3) != 4 || NextPow2(512) != 512 || NextPow2(513) != 1024 {
		t.Error("NextPow2 failed")
	}
	if !IsPow2(1) || !IsPow2(256) || IsPow2(0) || IsPow2(12) || IsPow2(-4) {
		t.Error("IsPow2 failed")
	}
	if Log2(1) != 0 || Log2(2) != 1 || Log2(1024) != 10 || Log2(0) != 0 {
		t.Error("Log2 failed")
	}
}

func TestFormatters(t *testing.T) {
	if FormatMbit(2048) != "2.00 Gbit" {
		t.Errorf("FormatMbit(2048) = %q", FormatMbit(2048))
	}
	if FormatMbit(4.75) != "4.75 Mbit" {
		t.Errorf("FormatMbit(4.75) = %q", FormatMbit(4.75))
	}
	if FormatMbit(0.25) != "256 Kbit" {
		t.Errorf("FormatMbit(0.25) = %q", FormatMbit(0.25))
	}
	if FormatGBps(9) != "9.00 GB/s" {
		t.Errorf("FormatGBps(9) = %q", FormatGBps(9))
	}
	if FormatGBps(0.2) != "200.0 MB/s" {
		t.Errorf("FormatGBps(0.2) = %q", FormatGBps(0.2))
	}
}

// Property: NextPow2(n) is a power of two, >= n, and < 2n for n >= 1.
func TestNextPow2Property(t *testing.T) {
	f := func(raw uint16) bool {
		n := int(raw%10000) + 1
		p := NextPow2(n)
		return IsPow2(p) && p >= n && p < 2*n+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: fill frequency is inversely proportional to size.
func TestFillFrequencyInverseProperty(t *testing.T) {
	f := func(rawBW, rawSize uint16) bool {
		bw := float64(rawBW%1000) / 100
		size := float64(rawSize%1024) + 1
		a := FillFrequencyHz(bw, size)
		b := FillFrequencyHz(bw, 2*size)
		return almostEqual(a, 2*b, 1e-6*(a+1))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Clamp output is always inside the (normalized) interval.
func TestClampProperty(t *testing.T) {
	f := func(v, a, b float64) bool {
		if math.IsNaN(v) || math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		c := Clamp(v, a, b)
		return c >= lo && c <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
