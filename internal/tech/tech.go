// Package tech defines technology parameter sets for the eDRAM trade-off
// models: the base-process choice the paper's §3 discusses (DRAM-based,
// logic-based, or merged), electrical constants for interface power and
// delay modelling, and the late-1990s scaling trends the paper's §4 argues
// from.
//
// All parameter values are calibrated against the corner points the paper
// itself publishes (0.24 µm process, ≈1 Mbit/mm² for large macros, <7 ns
// cycle, 2.5 V DRAM / 3.3 V logic supplies) plus standard 100-MHz SDRAM
// datasheet timing of the era. The absolute values are synthetic; the
// ratios between processes are the quantities the paper's arguments rest
// on and are preserved.
package tech

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
)

// ProcessKind distinguishes the three base-process options of paper §3.
type ProcessKind int

const (
	// DRAMBased: a DRAM process used as master. Dense memory cells,
	// low-leakage (slow) logic transistors, few metal layers.
	DRAMBased ProcessKind = iota
	// LogicBased: a logic process used as master. Fast logic, but the
	// DRAM cell needs a planar or stacked capacitor built without the
	// dedicated DRAM steps, so it is several times larger.
	LogicBased
	// Merged: a process with the dedicated steps of both. Best of both
	// worlds at extra mask and wafer cost.
	Merged
)

// String implements fmt.Stringer.
func (k ProcessKind) String() string {
	switch k {
	case DRAMBased:
		return "dram-based"
	case LogicBased:
		return "logic-based"
	case Merged:
		return "merged"
	default:
		return fmt.Sprintf("ProcessKind(%d)", int(k))
	}
}

// ParseKind maps a kind name ("dram-based", "logic-based", "merged") to
// its ProcessKind.
func ParseKind(s string) (ProcessKind, error) {
	switch s {
	case "dram-based", "":
		return DRAMBased, nil
	case "logic-based":
		return LogicBased, nil
	case "merged":
		return Merged, nil
	default:
		return DRAMBased, fmt.Errorf("tech: unknown process kind %q (dram-based, logic-based, merged)", s)
	}
}

// MarshalJSON renders the kind by name: like the other wire enums
// (edram.RedundancyLevel, reliab.ECC), ProcessKind travels by name,
// never ordinal, so renumbering cannot silently alias wire values.
func (k ProcessKind) MarshalJSON() ([]byte, error) {
	return json.Marshal(k.String())
}

// UnmarshalJSON accepts the kind name.
func (k *ProcessKind) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	kind, err := ParseKind(s)
	if err != nil {
		return err
	}
	*k = kind
	return nil
}

// Process is a complete technology description. Units are given per field.
type Process struct {
	Name string      `json:"name"`
	Kind ProcessKind `json:"kind"`

	// FeatureUm is the drawn feature size F in µm.
	FeatureUm float64 `json:"feature_um"`

	// MetalLayers available for routing. DRAM processes have fewer
	// (paper §1); layers can be added at extra cost.
	MetalLayers int `json:"metal_layers"`

	// CellFactor is the DRAM cell area expressed in F² units. A true
	// DRAM process achieves ~8 F²; a logic-based cell is several times
	// larger.
	CellFactor float64 `json:"cell_factor"`

	// LogicDensityKGatesPerMm2 is the routed standard-cell density in
	// kgates/mm² (2-input NAND equivalents).
	LogicDensityKGatesPerMm2 float64 `json:"logic_density_kgates_per_mm2"`

	// LogicDelayRel is the relative gate delay, normalized so that a
	// pure logic process at this node is 1.0. DRAM transistors are
	// optimized for low leakage and are slower (paper §1).
	LogicDelayRel float64 `json:"logic_delay_rel"`

	// LeakageRel is the relative transistor off-current, normalized so
	// that a pure DRAM process is 1.0. Logic transistors leak more.
	LeakageRel float64 `json:"leakage_rel"`

	// Supply voltages (paper §1: currently DRAM 2.5 V < logic 3.3 V).
	VddLogicV float64 `json:"vdd_logic_v"`
	VddDRAMV  float64 `json:"vdd_dram_v"`

	// RetentionMs is the nominal DRAM cell retention time at the
	// reference junction temperature RefJunctionC.
	RetentionMs  float64 `json:"retention_ms"`
	RefJunctionC float64 `json:"ref_junction_c"`
	// RetentionHalvingC is the junction-temperature increase that
	// halves retention time (classic ~10 °C rule).
	RetentionHalvingC float64 `json:"retention_halving_c"`

	// WaferCostUSD is the processed-wafer cost; WaferDiameterMm its
	// diameter (200 mm era).
	WaferCostUSD    float64 `json:"wafer_cost_usd"`
	WaferDiameterMm float64 `json:"wafer_diameter_mm"`

	// MetalLayerAdderUSD is the wafer-cost adder per extra metal layer
	// beyond MetalLayers (paper §1: "layers can be added at the expense
	// of process cost").
	MetalLayerAdderUSD float64 `json:"metal_layer_adder_usd"`
}

// CanonicalKey is the normalized fingerprint of the full parameter set,
// used by the service layer's cache identity. Every semantically
// significant field is rendered in declared order — the name alone is
// NOT an identity, since the wire schema accepts arbitrary custom
// processes that may reuse a name with different parameters. The name
// is quoted so client-chosen strings cannot forge the field structure;
// floats use the shortest exact round-trip form; the kind travels by
// name. The surrounding braces make concatenations of process keys
// (Requirements.Processes) self-delimiting.
//
//cachekey:fields v1 CellFactor,FeatureUm,Kind,LeakageRel,LogicDelayRel,LogicDensityKGatesPerMm2,MetalLayerAdderUSD,MetalLayers,Name,RefJunctionC,RetentionHalvingC,RetentionMs,VddDRAMV,VddLogicV,WaferCostUSD,WaferDiameterMm
func (p Process) CanonicalKey() string {
	var b strings.Builder
	b.WriteString("proc/v1{")
	b.WriteString("name=" + strconv.Quote(p.Name))
	b.WriteString("|kind=" + p.Kind.String())
	b.WriteString("|feature=" + canonFloat(p.FeatureUm))
	fmt.Fprintf(&b, "|metals=%d", p.MetalLayers)
	b.WriteString("|cellf=" + canonFloat(p.CellFactor))
	b.WriteString("|ldens=" + canonFloat(p.LogicDensityKGatesPerMm2))
	b.WriteString("|ldelay=" + canonFloat(p.LogicDelayRel))
	b.WriteString("|leak=" + canonFloat(p.LeakageRel))
	b.WriteString("|vddl=" + canonFloat(p.VddLogicV))
	b.WriteString("|vddd=" + canonFloat(p.VddDRAMV))
	b.WriteString("|ret=" + canonFloat(p.RetentionMs))
	b.WriteString("|refj=" + canonFloat(p.RefJunctionC))
	b.WriteString("|rethalf=" + canonFloat(p.RetentionHalvingC))
	b.WriteString("|wcost=" + canonFloat(p.WaferCostUSD))
	b.WriteString("|wdiam=" + canonFloat(p.WaferDiameterMm))
	b.WriteString("|madder=" + canonFloat(p.MetalLayerAdderUSD))
	b.WriteString("}")
	return b.String()
}

// canonFloat renders a float in its shortest exact round-trip form, the
// canonical-key formatting rule shared with the service layer.
func canonFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// CellAreaUm2 returns the DRAM cell area in µm².
func (p Process) CellAreaUm2() float64 {
	f := p.FeatureUm
	return p.CellFactor * f * f
}

// Validate checks internal consistency of the parameter set.
func (p Process) Validate() error {
	switch {
	case p.FeatureUm <= 0:
		return fmt.Errorf("tech: process %q: feature size must be positive", p.Name)
	case p.CellFactor < 4:
		return fmt.Errorf("tech: process %q: cell factor %.1f below physical limit 4F²", p.Name, p.CellFactor)
	case p.MetalLayers < 1:
		return fmt.Errorf("tech: process %q: need at least one metal layer", p.Name)
	case p.LogicDelayRel < 1 && p.Kind != LogicBased && p.Kind != Merged:
		return fmt.Errorf("tech: process %q: only logic/merged processes reach relative delay < 1", p.Name)
	case p.VddDRAMV <= 0 || p.VddLogicV <= 0:
		return fmt.Errorf("tech: process %q: supplies must be positive", p.Name)
	case p.RetentionMs <= 0:
		return fmt.Errorf("tech: process %q: retention must be positive", p.Name)
	case p.WaferCostUSD <= 0 || p.WaferDiameterMm <= 0:
		return fmt.Errorf("tech: process %q: wafer economics must be positive", p.Name)
	}
	return nil
}

// Siemens024 returns the paper §5 reference: a 0.24 µm eDRAM technology
// based on a 64/256-Mbit SDRAM process (DRAM as master process).
func Siemens024() Process {
	return Process{
		Name:                     "siemens-0.24um-edram",
		Kind:                     DRAMBased,
		FeatureUm:                0.24,
		MetalLayers:              3,
		CellFactor:               8,
		LogicDensityKGatesPerMm2: 28, // depressed by few metals + slow transistors
		LogicDelayRel:            1.4,
		LeakageRel:               1.0,
		VddLogicV:                3.3,
		VddDRAMV:                 2.5,
		RetentionMs:              64,
		RefJunctionC:             70,
		RetentionHalvingC:        10,
		WaferCostUSD:             2800,
		WaferDiameterMm:          200,
		MetalLayerAdderUSD:       180,
	}
}

// Logic024 returns a contemporaneous 0.24 µm pure logic process with a
// bolt-on (planar-capacitor) DRAM cell: fast logic, poor memory density.
func Logic024() Process {
	return Process{
		Name:                     "logic-0.24um",
		Kind:                     LogicBased,
		FeatureUm:                0.24,
		MetalLayers:              5,
		CellFactor:               26, // planar cell, ~3.3x the true-DRAM cell
		LogicDensityKGatesPerMm2: 45,
		LogicDelayRel:            1.0,
		LeakageRel:               8.0,
		VddLogicV:                3.3,
		VddDRAMV:                 3.3, // no separate DRAM supply
		RetentionMs:              16,  // leaky cell, shorter retention
		RefJunctionC:             70,
		RetentionHalvingC:        10,
		WaferCostUSD:             2600,
		WaferDiameterMm:          200,
		MetalLayerAdderUSD:       180,
	}
}

// Merged024 returns a 0.24 µm merged process: dedicated DRAM steps plus
// logic-grade transistors and a full metal stack, at higher wafer cost
// ("best of both worlds, most likely at higher expense", paper §3).
func Merged024() Process {
	return Process{
		Name:                     "merged-0.24um",
		Kind:                     Merged,
		FeatureUm:                0.24,
		MetalLayers:              5,
		CellFactor:               9, // nearly true-DRAM density
		LogicDensityKGatesPerMm2: 42,
		LogicDelayRel:            1.05,
		LeakageRel:               2.0,
		VddLogicV:                3.3,
		VddDRAMV:                 2.5,
		RetentionMs:              64,
		RefJunctionC:             70,
		RetentionHalvingC:        10,
		WaferCostUSD:             3600, // extra masks/steps
		WaferDiameterMm:          200,
		MetalLayerAdderUSD:       180,
	}
}

// Processes returns the three §3 base-process options at 0.24 µm, in a
// stable order (DRAM-based, logic-based, merged).
func Processes() []Process {
	return []Process{Siemens024(), Logic024(), Merged024()}
}

// Electrical holds interface-level electrical constants shared by the
// power and timing models.
type Electrical struct {
	// OffChipLoadPF is the total capacitive load one off-chip signal
	// must drive: output pad, package lead, board trace and the input
	// loads of the receivers (paper §1: "large board wire capacitive
	// loads").
	OffChipLoadPF float64
	// OnChipLoadPF is the load of an on-chip interface wire of typical
	// macro-to-logic length.
	OnChipLoadPF float64
	// OnChipWireCapPFPerMm is used when the actual wire length is known.
	OnChipWireCapPFPerMm float64
	// BoardTraceCapPFPerMm for board-level propagation studies.
	BoardTraceCapPFPerMm float64
	// OnChipWireResOhmPerMm / BoardTraceResOhmPerMm for RC delay.
	OnChipWireResOhmPerMm float64
	BoardTraceResOhmPerMm float64
	// DriverResOhm values for the two driver classes.
	OffChipDriverResOhm float64
	OnChipDriverResOhm  float64
	// SwitchingActivity is the average fraction of bus lines toggling
	// per transfer (random data ≈ 0.5).
	SwitchingActivity float64
	// NoiseCouplingPerMm is the fraction of aggressor swing coupled
	// onto a victim line per mm of parallel run (simple noise model).
	OnChipNoiseCouplingPerMm float64
	BoardNoiseCouplingPerMm  float64
}

// DefaultElectrical returns the late-1990s constants used throughout the
// reproduction. The paper's ~10x interface-power claim decomposes into
// the off-chip/on-chip load ratio (~6x here) times the supply-voltage
// advantage of the DRAM interface ((3.3/2.5)² ≈ 1.74x).
func DefaultElectrical() Electrical {
	return Electrical{
		OffChipLoadPF:            30, // pad + lead + trace + receivers
		OnChipLoadPF:             5,  // few-mm macro interface wire + receivers
		OnChipWireCapPFPerMm:     0.25,
		BoardTraceCapPFPerMm:     0.9,
		OnChipWireResOhmPerMm:    60,
		BoardTraceResOhmPerMm:    0.4,
		OffChipDriverResOhm:      25,
		OnChipDriverResOhm:       250,
		SwitchingActivity:        0.5,
		OnChipNoiseCouplingPerMm: 0.010,
		BoardNoiseCouplingPerMm:  0.004,
	}
}

// SDRAMTiming holds the core timing parameters of a late-1990s 100-MHz
// SDRAM, in ns. The same array timing is used for the embedded macro
// (same core), while the interface and organization differ.
type SDRAMTiming struct {
	TRCDns  float64 // row-to-column delay (ACT -> READ/WRITE)
	TRPns   float64 // precharge time
	TCASns  float64 // column access (CAS latency in time)
	TRCns   float64 // row cycle (ACT -> ACT, same bank)
	TRASns  float64 // row active minimum
	TCKns   float64 // interface clock period
	TRefIns float64 // average refresh interval per row (distributed)
	TRFCns  float64 // refresh cycle duration
	// TWTRns is the write-to-read bus turnaround penalty (0 disables).
	TWTRns float64
	// TFAWns is the rolling four-activate window (0 disables): no more
	// than four ACTs may issue within any TFAWns (power-delivery limit).
	TFAWns float64
}

// PC100 returns standard 100-MHz SDRAM timing (CL2).
func PC100() SDRAMTiming {
	return SDRAMTiming{
		TRCDns:  20,
		TRPns:   20,
		TCASns:  20,
		TRCns:   70,
		TRASns:  50,
		TCKns:   10,
		TRefIns: 15625, // 4096 rows / 64 ms
		TRFCns:  80,
	}
}

// EDRAM143 returns the embedded-macro timing corresponding to the paper's
// §5 numbers: cycle times better than 7 ns (≥143 MHz) on the same 0.24 µm
// core, enabled by shorter internal wires and wider, shallower banks.
func EDRAM143() SDRAMTiming {
	return SDRAMTiming{
		TRCDns:  14,
		TRPns:   14,
		TCASns:  7,
		TRCns:   49,
		TRASns:  35,
		TCKns:   7,
		TRefIns: 15625,
		TRFCns:  56,
	}
}

// Scaling trend constants (paper §4): processor performance grows 60 %/yr,
// DRAM core access time improves only ~10 %/yr, DRAM device capacity
// quadruples every three years, and PC memory-system size has grown at
// half the rate of single devices.
const (
	CPUPerfGrowthPerYear        = 1.60
	DRAMAccessImprovementPerYr  = 0.10 // access time shrinks 10 %/yr
	DRAMDensityGrowthPer3Years  = 4.0
	SystemSizeGrowthRatioOfChip = 0.5
)
