package tech

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestProcessesValidate(t *testing.T) {
	for _, p := range Processes() {
		if err := p.Validate(); err != nil {
			t.Errorf("process %s: %v", p.Name, err)
		}
	}
}

func TestProcessKindString(t *testing.T) {
	if DRAMBased.String() != "dram-based" || LogicBased.String() != "logic-based" || Merged.String() != "merged" {
		t.Error("ProcessKind.String values changed")
	}
	if !strings.Contains(ProcessKind(99).String(), "99") {
		t.Error("unknown kind should embed its number")
	}
}

func TestProcessKindJSONRoundTrip(t *testing.T) {
	for _, kind := range []ProcessKind{DRAMBased, LogicBased, Merged} {
		b, err := json.Marshal(kind)
		if err != nil {
			t.Fatalf("marshal %v: %v", kind, err)
		}
		// The wire form is the name, never the ordinal.
		if string(b) != `"`+kind.String()+`"` {
			t.Errorf("kind %v marshals to %s, want its name", kind, b)
		}
		var back ProcessKind
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", b, err)
		}
		if back != kind {
			t.Errorf("round trip %v -> %s -> %v", kind, b, back)
		}
	}
	var k ProcessKind
	if err := json.Unmarshal([]byte(`"quantum"`), &k); err == nil {
		t.Error("unknown kind name must be rejected")
	}
	if err := json.Unmarshal([]byte(`1`), &k); err == nil {
		t.Error("ordinal kind encoding must be rejected")
	}
}

func TestProcessCanonicalKeyCoversEveryField(t *testing.T) {
	base := Siemens024()
	if base.CanonicalKey() != base.CanonicalKey() {
		t.Fatal("key not stable")
	}
	// Each mutation flips exactly one field; every one must change the
	// key — a same-named process with tweaked parameters is a different
	// cache identity.
	mutations := map[string]func(*Process){
		"Name":                     func(p *Process) { p.Name = "custom" },
		"Kind":                     func(p *Process) { p.Kind = Merged },
		"FeatureUm":                func(p *Process) { p.FeatureUm *= 2 },
		"MetalLayers":              func(p *Process) { p.MetalLayers++ },
		"CellFactor":               func(p *Process) { p.CellFactor *= 2 },
		"LogicDensityKGatesPerMm2": func(p *Process) { p.LogicDensityKGatesPerMm2 *= 2 },
		"LogicDelayRel":            func(p *Process) { p.LogicDelayRel *= 2 },
		"LeakageRel":               func(p *Process) { p.LeakageRel *= 2 },
		"VddLogicV":                func(p *Process) { p.VddLogicV *= 2 },
		"VddDRAMV":                 func(p *Process) { p.VddDRAMV *= 2 },
		"RetentionMs":              func(p *Process) { p.RetentionMs *= 2 },
		"RefJunctionC":             func(p *Process) { p.RefJunctionC *= 2 },
		"RetentionHalvingC":        func(p *Process) { p.RetentionHalvingC *= 2 },
		"WaferCostUSD":             func(p *Process) { p.WaferCostUSD *= 2 },
		"WaferDiameterMm":          func(p *Process) { p.WaferDiameterMm *= 2 },
		"MetalLayerAdderUSD":       func(p *Process) { p.MetalLayerAdderUSD *= 2 },
	}
	for field, mutate := range mutations {
		p := base
		mutate(&p)
		if p.CanonicalKey() == base.CanonicalKey() {
			t.Errorf("mutating %s does not change the canonical key", field)
		}
	}
}

func TestProcessCanonicalKeyQuotesName(t *testing.T) {
	// A name containing the key's separators must not forge the field
	// structure of a different process.
	a, b := Siemens024(), Siemens024()
	a.Name = `x|kind=merged`
	b.Name = "x"
	b.Kind = Merged
	if a.CanonicalKey() == b.CanonicalKey() {
		t.Error("separator characters in a name alias another process")
	}
}

func TestCellAreaOrdering(t *testing.T) {
	// Paper §3: DRAM-based gives the densest cell, logic-based the
	// least dense, merged close to DRAM-based.
	d, l, m := Siemens024(), Logic024(), Merged024()
	if !(d.CellAreaUm2() < m.CellAreaUm2() && m.CellAreaUm2() < l.CellAreaUm2()) {
		t.Fatalf("cell area ordering violated: dram %.3f merged %.3f logic %.3f",
			d.CellAreaUm2(), m.CellAreaUm2(), l.CellAreaUm2())
	}
	// 8F² at 0.24 µm is 0.4608 µm².
	want := 8 * 0.24 * 0.24
	if diff := d.CellAreaUm2() - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("dram cell area %.4f, want %.4f", d.CellAreaUm2(), want)
	}
}

func TestLogicOrdering(t *testing.T) {
	d, l, m := Siemens024(), Logic024(), Merged024()
	// Logic speed: logic-based fastest, DRAM-based slowest.
	if !(l.LogicDelayRel <= m.LogicDelayRel && m.LogicDelayRel < d.LogicDelayRel) {
		t.Error("logic delay ordering violated")
	}
	// Logic density: logic-based densest (more metals).
	if !(l.LogicDensityKGatesPerMm2 > m.LogicDensityKGatesPerMm2 &&
		m.LogicDensityKGatesPerMm2 > d.LogicDensityKGatesPerMm2) {
		t.Error("logic density ordering violated")
	}
	// Merged costs the most per wafer (paper: "at higher expense").
	if !(m.WaferCostUSD > d.WaferCostUSD && m.WaferCostUSD > l.WaferCostUSD) {
		t.Error("merged process must be the most expensive wafer")
	}
	// Leakage: DRAM transistors leak least (paper §1).
	if !(d.LeakageRel <= m.LeakageRel && m.LeakageRel <= l.LeakageRel) {
		t.Error("leakage ordering violated")
	}
	// Metal layers: DRAM process has fewer (paper §1).
	if d.MetalLayers >= l.MetalLayers {
		t.Error("DRAM process must have fewer metal layers than logic process")
	}
}

func TestSupplies(t *testing.T) {
	d := Siemens024()
	// Paper §1: currently DRAM supply (2.5 V) below logic supply (3.3 V).
	if d.VddDRAMV != 2.5 || d.VddLogicV != 3.3 {
		t.Errorf("supplies = %.1f/%.1f, want 2.5/3.3", d.VddDRAMV, d.VddLogicV)
	}
}

func TestValidateRejectsBadProcesses(t *testing.T) {
	base := Siemens024()
	bad := base
	bad.FeatureUm = 0
	if bad.Validate() == nil {
		t.Error("zero feature size must fail")
	}
	bad = base
	bad.CellFactor = 2
	if bad.Validate() == nil {
		t.Error("sub-4F² cell must fail")
	}
	bad = base
	bad.MetalLayers = 0
	if bad.Validate() == nil {
		t.Error("zero metal layers must fail")
	}
	bad = base
	bad.LogicDelayRel = 0.5 // faster than a logic process, on a DRAM process
	if bad.Validate() == nil {
		t.Error("DRAM process faster than logic baseline must fail")
	}
	bad = base
	bad.RetentionMs = 0
	if bad.Validate() == nil {
		t.Error("zero retention must fail")
	}
	bad = base
	bad.WaferCostUSD = 0
	if bad.Validate() == nil {
		t.Error("zero wafer cost must fail")
	}
	bad = base
	bad.VddDRAMV = 0
	if bad.Validate() == nil {
		t.Error("zero supply must fail")
	}
}

func TestElectricalRatio(t *testing.T) {
	e := DefaultElectrical()
	// The off-chip/on-chip load ratio times the (3.3/2.5)² voltage
	// advantage carries the paper's ~10x interface-power claim.
	ratio := e.OffChipLoadPF / e.OnChipLoadPF * (3.3 * 3.3) / (2.5 * 2.5)
	if ratio < 8 || ratio > 12 {
		t.Errorf("interface power ratio %.1f outside the ~10x regime", ratio)
	}
	if e.SwitchingActivity <= 0 || e.SwitchingActivity > 1 {
		t.Error("switching activity must be in (0,1]")
	}
}

func TestTimingSets(t *testing.T) {
	pc := PC100()
	ed := EDRAM143()
	if pc.TCKns != 10 {
		t.Errorf("PC100 clock %v ns, want 10", pc.TCKns)
	}
	if ed.TCKns > 7 {
		t.Errorf("eDRAM cycle %v ns, paper requires better than 7 ns", ed.TCKns)
	}
	// The embedded core must be uniformly at least as fast.
	if ed.TRCDns > pc.TRCDns || ed.TRPns > pc.TRPns || ed.TRCns > pc.TRCns || ed.TCASns > pc.TCASns {
		t.Error("embedded macro timing must not be slower than the discrete part")
	}
	// Internal consistency: tRC >= tRAS + tRP for both.
	for _, tm := range []SDRAMTiming{pc, ed} {
		if tm.TRCns < tm.TRASns+tm.TRPns-1e-9 {
			t.Errorf("tRC %.0f < tRAS %.0f + tRP %.0f", tm.TRCns, tm.TRASns, tm.TRPns)
		}
	}
}

func TestTrendConstants(t *testing.T) {
	if CPUPerfGrowthPerYear != 1.60 {
		t.Error("paper states 60%/yr CPU growth")
	}
	if DRAMAccessImprovementPerYr != 0.10 {
		t.Error("paper states 10%/yr DRAM access improvement")
	}
}
