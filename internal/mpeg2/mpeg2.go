// Package mpeg2 models the memory side of an MPEG2 video decoder — the
// paper's §4.1 case study. The decoding pipeline holds three large
// memories: a compressed-input (VBV) buffer, two full reference-frame
// stores for bidirectional reconstruction, and an output buffer for
// progressive-to-interlaced conversion. The package computes the memory
// budget and bandwidth requirement for PAL and NTSC in both output-buffer
// modes (full, and the reduced mode that saves ~3 Mbit at the cost of
// doubling pipeline throughput and motion-compensation bandwidth), and
// generates the corresponding client traffic for the memory-system
// simulator.
package mpeg2

import (
	"fmt"
	"math/rand"

	"edram/internal/sched"
	"edram/internal/traffic"
	"edram/internal/units"
)

// Format describes a 4:2:0 video format.
type Format struct {
	Name   string
	Width  int // luma samples per line
	Height int // luma lines
	FPS    int // frames per second
}

// PAL returns the 720x576 @ 25 Hz format (frame = 4.75 Mbit in 4:2:0).
func PAL() Format { return Format{Name: "PAL", Width: 720, Height: 576, FPS: 25} }

// NTSC returns the 720x480 @ 30 Hz format (frame = 3.96 Mbit in 4:2:0).
func NTSC() Format { return Format{Name: "NTSC", Width: 720, Height: 480, FPS: 30} }

// FrameBytes returns the 4:2:0 frame size in bytes (luma + 2 quarter-size
// chroma planes = 1.5 bytes per pixel).
func (f Format) FrameBytes() int64 {
	return int64(f.Width) * int64(f.Height) * 3 / 2
}

// FrameMbit returns the 4:2:0 frame size in Mbit.
func (f Format) FrameMbit() float64 { return units.BytesToMbit(f.FrameBytes()) }

// MacroblocksPerFrame returns the number of 16x16 macroblocks.
func (f Format) MacroblocksPerFrame() int {
	return (f.Width / 16) * (f.Height / 16)
}

// Validate checks the format.
func (f Format) Validate() error {
	if f.Width <= 0 || f.Height <= 0 || f.FPS <= 0 {
		return fmt.Errorf("mpeg2: invalid format %+v", f)
	}
	if f.Width%16 != 0 || f.Height%16 != 0 {
		return fmt.Errorf("mpeg2: %s: dimensions must be macroblock aligned", f.Name)
	}
	return nil
}

// OutputMode selects the progressive-to-interlaced output buffering.
type OutputMode int

const (
	// FullOutput keeps a full frame in the output buffer.
	FullOutput OutputMode = iota
	// ReducedOutput shrinks the output buffer to the fraction of a
	// frame that must stay ahead of the display raster when the
	// decoding pipeline runs at twice the throughput — the paper's
	// "about 3 Mbit can be saved at the expense of doubling the
	// throughput of the decoding pipeline as well as the memory
	// bandwidth of the motion compensation module".
	ReducedOutput
)

// String implements fmt.Stringer.
func (m OutputMode) String() string {
	if m == ReducedOutput {
		return "reduced-output"
	}
	return "full-output"
}

// reducedOutputFraction is the frame fraction the reduced output buffer
// keeps (a sliding window of macroblock rows ahead of the raster).
const reducedOutputFraction = 0.35

// VBVBufferBits is the MP@ML rate-buffer size (1.75 Mbit).
const VBVBufferBits = 1835008

// MaxBitrateMbps is the MP@ML maximum compressed bitrate.
const MaxBitrateMbps = 15.0

// Budget is the decoder's memory budget in Mbit.
type Budget struct {
	Format Format
	Mode   OutputMode
	// InputMbit is the VBV compressed-data buffer.
	InputMbit float64
	// RefMbit holds the two reference frames.
	RefMbit float64
	// OutputMbit is the progressive-to-interlace buffer.
	OutputMbit float64
	TotalMbit  float64
}

// BudgetFor computes the §4.1 memory budget.
func BudgetFor(f Format, mode OutputMode) (Budget, error) {
	if err := f.Validate(); err != nil {
		return Budget{}, err
	}
	b := Budget{Format: f, Mode: mode}
	b.InputMbit = float64(VBVBufferBits) / units.Mbit
	b.RefMbit = 2 * f.FrameMbit()
	if mode == ReducedOutput {
		b.OutputMbit = f.FrameMbit() * reducedOutputFraction
	} else {
		b.OutputMbit = f.FrameMbit()
	}
	b.TotalMbit = b.InputMbit + b.RefMbit + b.OutputMbit
	return b, nil
}

// SavingMbit returns the memory saved by the reduced mode.
func SavingMbit(f Format) (float64, error) {
	full, err := BudgetFor(f, FullOutput)
	if err != nil {
		return 0, err
	}
	red, err := BudgetFor(f, ReducedOutput)
	if err != nil {
		return 0, err
	}
	return full.TotalMbit - red.TotalMbit, nil
}

// Worst-case motion-compensation fetch per macroblock, bytes (B-picture,
// bidirectional, half-pel interpolation in 4:2:0):
//
//	luma:   2 refs x 17x17        = 578
//	chroma: 2 refs x 2 x 9x9      = 324
const mcBytesPerMacroblock = 2*17*17 + 2*2*9*9

// reconBytesPerMacroblock is the reconstructed-macroblock write (384 =
// 256 luma + 128 chroma).
const reconBytesPerMacroblock = 384

// BandwidthReport breaks down the decoder's memory bandwidth in GB/s.
type BandwidthReport struct {
	InputGBps   float64 // bitstream write + read
	MCGBps      float64 // motion-compensation reference reads
	ReconGBps   float64 // reconstructed picture writes
	DisplayGBps float64 // output buffer write + raster read
	TotalGBps   float64
}

// Bandwidth computes the §4.1 bandwidth requirement. In ReducedOutput
// mode the pipeline (and with it the MC and reconstruction traffic) runs
// at twice the real-time rate.
func Bandwidth(f Format, mode OutputMode) (BandwidthReport, error) {
	if err := f.Validate(); err != nil {
		return BandwidthReport{}, err
	}
	mbPerSec := float64(f.MacroblocksPerFrame() * f.FPS)
	pipelineFactor := 1.0
	if mode == ReducedOutput {
		pipelineFactor = 2.0
	}
	var r BandwidthReport
	r.InputGBps = 2 * MaxBitrateMbps * 1e6 / 8 / 1e9 // write + read of the stream
	r.MCGBps = pipelineFactor * mbPerSec * mcBytesPerMacroblock / 1e9
	r.ReconGBps = pipelineFactor * mbPerSec * reconBytesPerMacroblock / 1e9
	// The display path writes the frame into the output buffer and
	// reads it out field-by-field, independent of the pipeline factor.
	frameBytesPerSec := float64(f.FrameBytes()) * float64(f.FPS)
	r.DisplayGBps = 2 * frameBytesPerSec / 1e9
	r.TotalGBps = r.InputGBps + r.MCGBps + r.ReconGBps + r.DisplayGBps
	return r, nil
}

// Clients builds the decoder's memory clients for the controller
// simulator, scaled to decode `frames` frames of traffic. Buffers are
// laid out consecutively: input, ref0, ref1, output.
func Clients(f Format, mode OutputMode, frames int, seed int64) ([]sched.Client, error) {
	bw, err := Bandwidth(f, mode)
	if err != nil {
		return nil, err
	}
	if frames < 1 {
		return nil, fmt.Errorf("mpeg2: frames must be >= 1, got %d", frames)
	}
	inputBase := int64(0)
	ref0Base := inputBase + VBVBufferBits/8
	ref1Base := ref0Base + f.FrameBytes()
	outBase := ref1Base + f.FrameBytes()

	mbPerFrame := f.MacroblocksPerFrame()
	rng := rand.New(rand.NewSource(seed))

	// Requests are 64-byte lines for streams; MC fetches 17-byte-wide,
	// 17-line blocks from the two reference frames (modelled as one
	// Block2D over the combined reference region).
	const lineBytes = 64
	streamReq := func(base int64, window int64, rate float64, write bool, id int) sched.Client {
		n := int(rate*1e9/lineBytes/float64(f.FPS)) * frames / 1 // requests for `frames` worth of time
		if n < 1 {
			n = 1
		}
		return sched.Client{Name: fmt.Sprintf("stream-%d", id), Gen: &traffic.Sequential{
			ClientID: id, StartB: base, LimitB: window, Bits: lineBytes * 8,
			Write: write, RateGB: rate, Count: n,
		}}
	}

	mcBlocks := mbPerFrame * frames * 2 // two reference fetches per MB
	clients := []sched.Client{
		{Name: "mc", Gen: &traffic.Block2D{
			ClientID: 0, BaseB: ref0Base, PitchB: int64(f.Width),
			Lines:  f.Height * 2, // both reference frames stacked
			BlockW: 17, BlockH: 17,
			RateGB: bw.MCGBps, Blocks: mcBlocks,
			Rng: rng,
		}},
		streamReq(outBase, f.FrameBytes(), bw.ReconGBps, true, 1),
		streamReq(outBase, f.FrameBytes(), bw.DisplayGBps/2, false, 2),
		streamReq(inputBase, VBVBufferBits/8, bw.InputGBps, false, 3),
	}
	clients[0].Name = "mc"
	clients[1].Name = "recon"
	clients[2].Name = "display"
	clients[3].Name = "input"
	return clients, nil
}

// CommoditySizesMbit lists the memory sizes reachable with the discrete
// parts the paper discusses (§4.1: 16 Mbit standard, or 20 Mbit as
// 4 x 4 Mbit / 32 Mbit as 2 x 16 Mbit).
func CommoditySizesMbit() []int { return []int{4, 8, 12, 16, 20, 32} }

// CommodityFitMbit returns the smallest commodity size that holds the
// budget, or 0 if none does.
func CommodityFitMbit(b Budget) int {
	for _, s := range CommoditySizesMbit() {
		if float64(s) >= b.TotalMbit {
			return s
		}
	}
	return 0
}

// EDRAMFitMbit returns the embedded macro capacity for the budget:
// rounded up to the 1-Mbit building block (the paper's granularity
// advantage).
func EDRAMFitMbit(b Budget) int {
	m := int(b.TotalMbit)
	if float64(m) < b.TotalMbit {
		m++
	}
	if m < 1 {
		m = 1
	}
	return m
}

// GOP describes a group-of-pictures composition. The worst-case
// bandwidth (Bandwidth) assumes every macroblock is bidirectionally
// predicted; a real stream mixes intra (no MC), predicted (one
// reference) and bidirectional (two references) pictures.
type GOP struct {
	I, P, B int
}

// TypicalGOP returns the classic 12-picture broadcast structure
// (IBBPBBPBBPBB).
func TypicalGOP() GOP { return GOP{I: 1, P: 3, B: 8} }

// Validate checks the GOP.
func (g GOP) Validate() error {
	if g.I < 1 || g.P < 0 || g.B < 0 {
		return fmt.Errorf("mpeg2: GOP must have >= 1 I picture and non-negative P/B counts")
	}
	return nil
}

// Pictures returns the GOP length.
func (g GOP) Pictures() int { return g.I + g.P + g.B }

// MCRefsPerMB returns the average number of reference fetches per
// macroblock over the GOP (I: 0, P: 1, B: 2).
func (g GOP) MCRefsPerMB() float64 {
	n := g.Pictures()
	if n == 0 {
		return 0
	}
	return float64(g.P+2*g.B) / float64(n)
}

// BandwidthGOP computes the decoder bandwidth averaged over the GOP
// structure instead of the all-bidirectional worst case: the MC term
// scales with the average reference count.
func BandwidthGOP(f Format, mode OutputMode, g GOP) (BandwidthReport, error) {
	if err := g.Validate(); err != nil {
		return BandwidthReport{}, err
	}
	r, err := Bandwidth(f, mode)
	if err != nil {
		return BandwidthReport{}, err
	}
	scale := g.MCRefsPerMB() / 2 // Bandwidth assumes 2 refs/MB
	r.TotalGBps -= r.MCGBps
	r.MCGBps *= scale
	r.TotalGBps += r.MCGBps
	return r, nil
}

// VBVResult reports a rate-buffer occupancy simulation.
type VBVResult struct {
	MinBits   int64
	MaxBits   int64
	Underflow bool // decoder starved (a frame was not fully present)
	Overflow  bool // encoder stalled (buffer could not absorb the rate)
	Frames    int
}

// SimulateVBV plays a GOP-patterned coded stream through the VBV rate
// buffer: bits arrive at the constant channel rate, and at each frame
// time the decoder instantaneously removes one coded picture (the
// MPEG2 buffer model). Picture sizes follow the classic I:P:B
// complexity ratio (≈8:3:1.5), normalized so the GOP average matches
// the channel rate. It verifies the §4.1 input-buffer sizing.
func SimulateVBV(f Format, g GOP, bitrateMbps float64, bufferBits int64, frames int) (VBVResult, error) {
	if err := f.Validate(); err != nil {
		return VBVResult{}, err
	}
	if err := g.Validate(); err != nil {
		return VBVResult{}, err
	}
	if bitrateMbps <= 0 || bufferBits <= 0 || frames < 1 {
		return VBVResult{}, fmt.Errorf("mpeg2: vbv parameters must be positive")
	}
	// Complexity weights, normalized over the GOP.
	const wI, wP, wB = 8.0, 3.0, 1.5
	n := float64(g.Pictures())
	mean := (float64(g.I)*wI + float64(g.P)*wP + float64(g.B)*wB) / n
	avgBits := bitrateMbps * 1e6 / float64(f.FPS)
	sizeOf := func(idx int) float64 {
		pos := idx % g.Pictures()
		switch {
		case pos == 0:
			return avgBits * wI / mean
		case pos%((g.B/max(1, g.P))+1) == 0 && g.P > 0:
			return avgBits * wP / mean
		default:
			return avgBits * wB / mean
		}
	}
	perFrameArrival := avgBits

	res := VBVResult{Frames: frames, MinBits: bufferBits, MaxBits: 0}
	// Standard start condition: decode starts once the buffer holds
	// the startup delay's worth of data (half full here).
	occ := float64(bufferBits) / 2
	for i := 0; i < frames; i++ {
		occ += perFrameArrival
		if occ > float64(bufferBits) {
			res.Overflow = true
			occ = float64(bufferBits)
		}
		occ -= sizeOf(i)
		if occ < 0 {
			res.Underflow = true
			occ = 0
		}
		if int64(occ) < res.MinBits {
			res.MinBits = int64(occ)
		}
		if int64(occ) > res.MaxBits {
			res.MaxBits = int64(occ)
		}
	}
	return res, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
