package mpeg2

import (
	"reflect"
	"testing"

	"edram/internal/edram"
	"edram/internal/mapping"
	"edram/internal/sched"
)

// The full decoder pipeline — client generation, traffic, controller,
// device — must reproduce bit-identical results from one seed. This is
// the end-to-end regression for the determinism invariant edramvet
// enforces on the model packages.
func TestDecoderRunDeterministic(t *testing.T) {
	run := func() sched.Result {
		m, err := edram.Build(edram.Spec{CapacityMbit: 16, InterfaceBits: 64})
		if err != nil {
			t.Fatal(err)
		}
		cfg := m.DeviceConfig()
		cfg.AutoRefresh = false
		gm := mapping.Geometry{Banks: cfg.Banks, RowsBank: cfg.RowsPerBank, PageBytes: cfg.PageBits / 8}
		mp, err := mapping.NewBankInterleaved(gm)
		if err != nil {
			t.Fatal(err)
		}
		clients, err := Clients(PAL(), FullOutput, 1, 7)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sched.RunWithOptions(cfg, mp, sched.Options{Policy: sched.OpenPageFirst}, clients)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed must reproduce the decoder run:\n%+v\nvs\n%+v", a, b)
	}
}
