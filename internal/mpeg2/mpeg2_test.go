package mpeg2

import (
	"math"
	"testing"

	"edram/internal/dram"
	"edram/internal/edram"
	"edram/internal/mapping"
	"edram/internal/sched"
)

func TestPaperFrameSizes(t *testing.T) {
	// Paper §4.1: "a PAL frame, for example, in 4:2:0 format needs
	// 4.75 Mbit, whereas an NTSC frame requires 3.96 Mbit."
	if got := PAL().FrameMbit(); math.Abs(got-4.75) > 0.01 {
		t.Errorf("PAL frame = %.3f Mbit, want 4.75", got)
	}
	if got := NTSC().FrameMbit(); math.Abs(got-3.96) > 0.01 {
		t.Errorf("NTSC frame = %.3f Mbit, want 3.96", got)
	}
}

func TestFormatValidate(t *testing.T) {
	if PAL().Validate() != nil || NTSC().Validate() != nil {
		t.Error("standard formats must validate")
	}
	bad := Format{Name: "x", Width: 0, Height: 480, FPS: 30}
	if bad.Validate() == nil {
		t.Error("zero width must fail")
	}
	bad = Format{Name: "x", Width: 100, Height: 480, FPS: 30}
	if bad.Validate() == nil {
		t.Error("non-macroblock width must fail")
	}
}

func TestMacroblocks(t *testing.T) {
	if PAL().MacroblocksPerFrame() != 45*36 {
		t.Errorf("PAL MBs = %d", PAL().MacroblocksPerFrame())
	}
	if NTSC().MacroblocksPerFrame() != 45*30 {
		t.Errorf("NTSC MBs = %d", NTSC().MacroblocksPerFrame())
	}
}

func TestPaper16MbitStory(t *testing.T) {
	// Paper §4.1: decoders are tuned to 16 Mbit; the standard was even
	// modified to make 16 Mbit sufficient for both PAL and NTSC.
	for _, f := range []Format{PAL(), NTSC()} {
		b, err := BudgetFor(f, FullOutput)
		if err != nil {
			t.Fatal(err)
		}
		if b.TotalMbit > 16 {
			t.Errorf("%s full budget %.2f Mbit exceeds 16", f.Name, b.TotalMbit)
		}
		if CommodityFitMbit(b) != 16 {
			t.Errorf("%s should fit exactly the 16-Mbit commodity size, got %d",
				f.Name, CommodityFitMbit(b))
		}
	}
	// PAL full budget should be close to the 16-Mbit bound (that is
	// why the standard had to be tweaked): within 1.5 Mbit.
	b, _ := BudgetFor(PAL(), FullOutput)
	if b.TotalMbit < 14.5 {
		t.Errorf("PAL budget %.2f Mbit suspiciously far below 16", b.TotalMbit)
	}
}

func TestPaper3MbitSaving(t *testing.T) {
	// Paper §4.1: "about 3 Mbit can be saved" in the output buffer.
	s, err := SavingMbit(PAL())
	if err != nil {
		t.Fatal(err)
	}
	if s < 2.5 || s > 3.5 {
		t.Errorf("PAL reduced-output saving = %.2f Mbit, want ~3", s)
	}
	// And commodity granularity cannot exploit it: still 16 Mbit...
	red, _ := BudgetFor(PAL(), ReducedOutput)
	if CommodityFitMbit(red) != 16 {
		t.Errorf("reduced budget still needs %d Mbit commodity", CommodityFitMbit(red))
	}
	// ...whereas the eDRAM macro shrinks to ~13 Mbit.
	if e := EDRAMFitMbit(red); e > 14 || e < 12 {
		t.Errorf("eDRAM fit = %d Mbit, want ~13", e)
	}
}

func TestBudgetBreakdown(t *testing.T) {
	b, err := BudgetFor(PAL(), FullOutput)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b.InputMbit-1.75) > 1e-9 {
		t.Errorf("VBV buffer = %.2f Mbit, want 1.75", b.InputMbit)
	}
	if math.Abs(b.RefMbit-2*PAL().FrameMbit()) > 1e-9 {
		t.Error("reference store must be two frames")
	}
	sum := b.InputMbit + b.RefMbit + b.OutputMbit
	if math.Abs(sum-b.TotalMbit) > 1e-9 {
		t.Error("budget must sum")
	}
	if _, err := BudgetFor(Format{}, FullOutput); err == nil {
		t.Error("invalid format must error")
	}
}

func TestBandwidthDoubling(t *testing.T) {
	// Paper §4.1: the saving costs "doubling the throughput of the
	// decoding pipeline as well as the memory bandwidth of the motion
	// compensation module".
	full, err := Bandwidth(PAL(), FullOutput)
	if err != nil {
		t.Fatal(err)
	}
	red, err := Bandwidth(PAL(), ReducedOutput)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(red.MCGBps/full.MCGBps-2) > 1e-9 {
		t.Errorf("MC bandwidth ratio = %.2f, want 2", red.MCGBps/full.MCGBps)
	}
	if red.TotalGBps <= full.TotalGBps {
		t.Error("reduced mode must cost total bandwidth")
	}
	// Sanity: a real-time MPEG2 decoder needs on the order of
	// 0.05-0.2 GB/s.
	if full.TotalGBps < 0.03 || full.TotalGBps > 0.3 {
		t.Errorf("PAL decoder bandwidth %.3f GB/s implausible", full.TotalGBps)
	}
	if _, err := Bandwidth(Format{}, FullOutput); err == nil {
		t.Error("invalid format must error")
	}
}

func TestBandwidthBreakdownSums(t *testing.T) {
	for _, f := range []Format{PAL(), NTSC()} {
		for _, m := range []OutputMode{FullOutput, ReducedOutput} {
			r, err := Bandwidth(f, m)
			if err != nil {
				t.Fatal(err)
			}
			sum := r.InputGBps + r.MCGBps + r.ReconGBps + r.DisplayGBps
			if math.Abs(sum-r.TotalGBps) > 1e-12 {
				t.Errorf("%s/%v: breakdown does not sum", f.Name, m)
			}
		}
	}
}

func TestOutputModeString(t *testing.T) {
	if FullOutput.String() != "full-output" || ReducedOutput.String() != "reduced-output" {
		t.Error("mode strings changed")
	}
}

func TestClientsGenerate(t *testing.T) {
	cs, err := Clients(PAL(), FullOutput, 1, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 4 {
		t.Fatalf("want 4 clients (mc/recon/display/input), got %d", len(cs))
	}
	names := map[string]bool{}
	for _, c := range cs {
		names[c.Name] = true
		if c.Gen == nil {
			t.Fatalf("client %s has no generator", c.Name)
		}
	}
	for _, want := range []string{"mc", "recon", "display", "input"} {
		if !names[want] {
			t.Errorf("missing client %q", want)
		}
	}
	if _, err := Clients(PAL(), FullOutput, 0, 1); err == nil {
		t.Error("zero frames must error")
	}
	if _, err := Clients(Format{}, FullOutput, 1, 1); err == nil {
		t.Error("bad format must error")
	}
}

// Integration: a 16-Mbit eDRAM macro sustains the PAL decoder's traffic
// with margin — the paper's "here eDRAM comes to the rescue".
func TestDecoderOnEDRAMMacro(t *testing.T) {
	m, err := edram.Build(edram.Spec{CapacityMbit: 16, InterfaceBits: 64})
	if err != nil {
		t.Fatal(err)
	}
	cfg := m.DeviceConfig()
	cfg.AutoRefresh = false // keep the integration check deterministic
	gm := mapping.Geometry{Banks: cfg.Banks, RowsBank: cfg.RowsPerBank, PageBytes: cfg.PageBits / 8}
	mp, err := mapping.NewBankInterleaved(gm)
	if err != nil {
		t.Fatal(err)
	}
	clients, err := Clients(PAL(), FullOutput, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sched.RunWithOptions(cfg, mp, sched.Options{Policy: sched.OpenPageFirst}, clients)
	if err != nil {
		t.Fatal(err)
	}
	// Real-time criterion: one frame of decoder traffic must complete
	// within one frame time (40 ms for PAL), with clear headroom.
	frameTimeNs := 1e9 / float64(PAL().FPS)
	if res.DurationNs > 1.05*frameTimeNs {
		t.Errorf("decode of one frame took %.1f ms, budget 40 ms", res.DurationNs/1e6)
	}
	// The macro must have ample bandwidth headroom for this workload.
	if res.SustainedFraction > 0.5 {
		t.Errorf("decoder consumes %.0f%% of macro peak; expected ample headroom",
			100*res.SustainedFraction)
	}
	// No client may see pathological latencies (its FIFO would overflow).
	for _, c := range res.Clients {
		if c.Stats.P99Ns > 20000 {
			t.Errorf("client %s p99 latency %.0f ns too high", c.Name, c.Stats.P99Ns)
		}
	}
	_ = dram.Stats{} // keep dram import for clarity of the integration surface
}

func TestGOPBasics(t *testing.T) {
	g := TypicalGOP()
	if g.Pictures() != 12 {
		t.Errorf("typical GOP = %d pictures, want 12", g.Pictures())
	}
	// (3x1 + 8x2)/12 = 19/12.
	if math.Abs(g.MCRefsPerMB()-19.0/12) > 1e-9 {
		t.Errorf("refs/MB = %v", g.MCRefsPerMB())
	}
	if (GOP{}).Validate() == nil {
		t.Error("GOP without I picture must fail")
	}
	if (GOP{I: 1, P: -1}).Validate() == nil {
		t.Error("negative P must fail")
	}
	if (GOP{}).MCRefsPerMB() != 0 {
		t.Error("empty GOP has no MC")
	}
}

func TestBandwidthGOPBelowWorstCase(t *testing.T) {
	worst, err := Bandwidth(PAL(), FullOutput)
	if err != nil {
		t.Fatal(err)
	}
	avg, err := BandwidthGOP(PAL(), FullOutput, TypicalGOP())
	if err != nil {
		t.Fatal(err)
	}
	if avg.MCGBps >= worst.MCGBps {
		t.Error("GOP-average MC must be below the all-B worst case")
	}
	// Scale check: 19/24 of worst case.
	if math.Abs(avg.MCGBps/worst.MCGBps-19.0/24) > 1e-9 {
		t.Errorf("MC scale = %v, want 19/24", avg.MCGBps/worst.MCGBps)
	}
	// Intra-only stream: no MC at all.
	iOnly, err := BandwidthGOP(PAL(), FullOutput, GOP{I: 1})
	if err != nil {
		t.Fatal(err)
	}
	if iOnly.MCGBps != 0 {
		t.Error("intra-only GOP must have zero MC bandwidth")
	}
	// Breakdown still sums.
	sum := avg.InputGBps + avg.MCGBps + avg.ReconGBps + avg.DisplayGBps
	if math.Abs(sum-avg.TotalGBps) > 1e-12 {
		t.Error("GOP breakdown must sum")
	}
	if _, err := BandwidthGOP(Format{}, FullOutput, TypicalGOP()); err == nil {
		t.Error("bad format must error")
	}
	if _, err := BandwidthGOP(PAL(), FullOutput, GOP{}); err == nil {
		t.Error("bad GOP must error")
	}
}

func TestVBVWithStandardBuffer(t *testing.T) {
	// An 8-Mbps broadcast stream through the 1.75-Mbit VBV buffer must
	// play without underflow or overflow — the sizing the standard
	// chose and the paper's budget assumes.
	res, err := SimulateVBV(PAL(), TypicalGOP(), 8, VBVBufferBits, 500)
	if err != nil {
		t.Fatal(err)
	}
	if res.Underflow || res.Overflow {
		t.Fatalf("standard buffer must absorb an 8-Mbps stream: %+v", res)
	}
	if res.MinBits < 0 || res.MaxBits > VBVBufferBits {
		t.Fatal("occupancy out of bounds")
	}
}

func TestVBVTinyBufferFails(t *testing.T) {
	// A buffer a tenth the size starves on I pictures.
	res, err := SimulateVBV(PAL(), TypicalGOP(), 8, VBVBufferBits/10, 500)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Underflow && !res.Overflow {
		t.Fatal("a tiny rate buffer must fail")
	}
}

func TestVBVErrors(t *testing.T) {
	if _, err := SimulateVBV(Format{}, TypicalGOP(), 8, VBVBufferBits, 10); err == nil {
		t.Error("bad format must error")
	}
	if _, err := SimulateVBV(PAL(), GOP{}, 8, VBVBufferBits, 10); err == nil {
		t.Error("bad GOP must error")
	}
	if _, err := SimulateVBV(PAL(), TypicalGOP(), 0, VBVBufferBits, 10); err == nil {
		t.Error("zero bitrate must error")
	}
	if _, err := SimulateVBV(PAL(), TypicalGOP(), 8, 0, 10); err == nil {
		t.Error("zero buffer must error")
	}
	if _, err := SimulateVBV(PAL(), TypicalGOP(), 8, VBVBufferBits, 0); err == nil {
		t.Error("zero frames must error")
	}
}
