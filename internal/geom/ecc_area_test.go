package geom

import (
	"testing"

	"edram/internal/tech"
)

func eccTestGeom() MacroGeometry {
	return MacroGeometry{
		Process:       tech.Siemens024(),
		BlockBits:     Block1M,
		Blocks:        16,
		Banks:         4,
		PageBits:      2048,
		InterfaceBits: 64,
	}
}

func TestECCOverheadArea(t *testing.T) {
	plain := eccTestGeom()
	base, err := plain.Area()
	if err != nil {
		t.Fatal(err)
	}
	if base.ECCMm2 != 0 {
		t.Errorf("no-ECC macro carries ECC area %g", base.ECCMm2)
	}
	prot := eccTestGeom()
	prot.ECCOverheadFrac = 0.125 // (72,64) SEC-DED
	withECC, err := prot.Area()
	if err != nil {
		t.Fatal(err)
	}
	want := 0.125 * (withECC.CellMm2 + withECC.ArrayOverheadMm2)
	if withECC.ECCMm2 != want {
		t.Errorf("ECCMm2 = %g, want %g", withECC.ECCMm2, want)
	}
	if withECC.TotalMm2 <= base.TotalMm2 {
		t.Error("ECC must grow the macro")
	}
	if withECC.EfficiencyMbitPerMm2 >= base.EfficiencyMbitPerMm2 {
		t.Error("ECC must cost area efficiency (usable bits unchanged)")
	}
}

func TestECCOverheadValidation(t *testing.T) {
	g := eccTestGeom()
	g.ECCOverheadFrac = -0.1
	if err := g.Validate(); err == nil {
		t.Error("negative ECC overhead accepted")
	}
	g.ECCOverheadFrac = 1.0
	if err := g.Validate(); err == nil {
		t.Error("ECC overhead >= 1 accepted")
	}
	g.ECCOverheadFrac = 0.5
	if err := g.Validate(); err != nil {
		t.Errorf("valid overhead rejected: %v", err)
	}
}
