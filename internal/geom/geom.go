// Package geom implements the silicon-area models of the reproduction:
// the floorplan of an embedded DRAM macro built from the paper's §5
// building blocks (256 Kbit and 1 Mbit), standard-cell logic area, pad
// rings, and die composition.
//
// The block-level constants are calibrated so that a ≥8–16-Mbit macro on
// the 0.24 µm DRAM-based process reaches the paper's published area
// efficiency of about 1 Mbit/mm², with small macros markedly less
// efficient (the fixed control/interface overhead dominates) — the
// behaviour that motivates the paper's "from 8-16 Mbit upwards" phrasing.
package geom

import (
	"fmt"
	"math"

	"edram/internal/tech"
	"edram/internal/units"
)

// Building-block sizes of the paper's §5 concept, in bits.
const (
	Block256K = 256 * units.Kbit
	Block1M   = 1 * units.Mbit
)

// Floorplan constants, in F² (squares of the drawn feature size) so they
// scale across process nodes.
const (
	// senseAmpF2PerColumn is the sense-amplifier strip area per column.
	senseAmpF2PerColumn = 1200
	// rowDecF2PerRow is the row-decoder/driver strip area per row.
	rowDecF2PerRow = 2000
	// blockFixedF2 is the per-block corner/control overhead.
	blockFixedF2 = 2.0e6
)

// Macro-level overhead constants, in mm² (dominated by layout pitch, not
// by F², at this granularity).
const (
	macroFixedMm2       = 0.90   // control, timing, test access
	perBankControlMm2   = 0.05   // bank sequencer + address latches
	perInterfaceBitMm2  = 0.0008 // data path, driver, mux per interface bit
	bistControllerKGate = 15     // paper §5: "small, synthesizable BIST controller"
)

// MacroGeometry describes the physical organization of one embedded DRAM
// macro. The organization parameters mirror the free dimensions of paper
// §3: block size, bank count, page length, interface width, redundancy.
type MacroGeometry struct {
	Process   tech.Process
	BlockBits int // Block256K or Block1M
	Blocks    int // number of building blocks
	Banks     int // independently operable banks
	// PageBits is the activated page length (may span several blocks
	// fired in parallel; it does not change the floorplan, only timing
	// and energy).
	PageBits int
	// InterfaceBits is the macro data interface width (16..512).
	InterfaceBits int
	// SpareRowsPerBlock / SpareColsPerBlock implement the redundancy
	// level ("different redundancy levels, in order to optimize the
	// yield of the memory module", §5).
	SpareRowsPerBlock int
	SpareColsPerBlock int
	// WithBIST includes the synthesizable BIST controller.
	WithBIST bool
	// ECCOverheadFrac is the check-bit storage overhead of the macro's
	// ECC scheme as a fraction of the payload width (e.g. 0.125 for a
	// (72,64) SEC-DED code; 0 for none). The check bits replicate the
	// cell array and its pitch-matched overhead, not the macro control.
	ECCOverheadFrac float64
}

// TotalBits returns the usable macro capacity in bits (spares excluded).
func (g MacroGeometry) TotalBits() int { return g.BlockBits * g.Blocks }

// BlockColumns returns the number of columns (bits per internal row) of
// one building block: blocks are square in bit count.
func (g MacroGeometry) BlockColumns() int {
	return units.NextPow2(int(math.Sqrt(float64(g.BlockBits))))
}

// BlockRows returns the number of internal rows of one building block.
func (g MacroGeometry) BlockRows() int {
	c := g.BlockColumns()
	if c == 0 {
		return 0
	}
	return g.BlockBits / c
}

// Validate checks physical and §5-concept constraints.
func (g MacroGeometry) Validate() error {
	if err := g.ValidateSansPage(); err != nil {
		return err
	}
	return g.ValidatePage()
}

// ValidateSansPage checks every constraint except the page-length rules.
// The macro area, block timing and cost models are all independent of
// the page length, so a geometry valid under ValidateSansPage can be
// shared across page-length variants (the design explorer's memoized
// evaluation relies on this split); ValidatePage covers the rest.
func (g MacroGeometry) ValidateSansPage() error {
	if err := g.Process.Validate(); err != nil {
		return err
	}
	if g.BlockBits != Block256K && g.BlockBits != Block1M {
		return fmt.Errorf("geom: block size %d bits; the concept offers 256 Kbit and 1 Mbit blocks", g.BlockBits)
	}
	if g.Blocks < 1 {
		return fmt.Errorf("geom: need at least one block, got %d", g.Blocks)
	}
	if g.Banks < 1 || g.Banks > g.Blocks {
		return fmt.Errorf("geom: banks %d must be in [1, blocks=%d]", g.Banks, g.Blocks)
	}
	if g.Blocks%g.Banks != 0 {
		return fmt.Errorf("geom: blocks %d not divisible by banks %d", g.Blocks, g.Banks)
	}
	if g.InterfaceBits < 16 || g.InterfaceBits > 512 || !units.IsPow2(g.InterfaceBits) {
		return fmt.Errorf("geom: interface width %d outside the concept's 16..512 power-of-two range", g.InterfaceBits)
	}
	if g.SpareRowsPerBlock < 0 || g.SpareColsPerBlock < 0 {
		return fmt.Errorf("geom: spare counts must be non-negative")
	}
	if g.ECCOverheadFrac < 0 || g.ECCOverheadFrac >= 1 {
		return fmt.Errorf("geom: ECC overhead fraction %g out of [0,1)", g.ECCOverheadFrac)
	}
	return nil
}

// ValidatePage checks only the page-length rules (positive, at least the
// interface width, within the bank's column span).
func (g MacroGeometry) ValidatePage() error {
	if g.PageBits <= 0 || g.PageBits < g.InterfaceBits {
		return fmt.Errorf("geom: page length %d must be positive and >= interface width %d", g.PageBits, g.InterfaceBits)
	}
	maxPage := g.BlockColumns() * (g.Blocks / g.Banks)
	if g.PageBits > maxPage {
		return fmt.Errorf("geom: page length %d exceeds the bank's column span %d", g.PageBits, maxPage)
	}
	return nil
}

// AreaBreakdown is the silicon-area report of a macro.
type AreaBreakdown struct {
	CellMm2          float64 // payload storage cells
	ArrayOverheadMm2 float64 // sense amps, decoders, per-block fixed
	RedundancyMm2    float64 // spare rows/columns
	ECCMm2           float64 // check-bit columns and their array overhead
	MacroOverheadMm2 float64 // control, interface, per-bank logic
	BISTMm2          float64 // optional BIST controller
	TotalMm2         float64
	// EfficiencyMbitPerMm2 is usable Mbit per total mm² — the paper's
	// headline metric.
	EfficiencyMbitPerMm2 float64
}

// Area computes the macro area. The organization must validate.
func (g MacroGeometry) Area() (AreaBreakdown, error) {
	if err := g.Validate(); err != nil {
		return AreaBreakdown{}, err
	}
	f2 := g.Process.FeatureUm * g.Process.FeatureUm // µm² per F²
	um2ToMm2 := 1e-6

	rows := float64(g.BlockRows())
	cols := float64(g.BlockColumns())
	cellUm2 := g.Process.CellAreaUm2()

	var b AreaBreakdown
	nb := float64(g.Blocks)
	b.CellMm2 = nb * rows * cols * cellUm2 * um2ToMm2
	b.ArrayOverheadMm2 = nb * (senseAmpF2PerColumn*cols + rowDecF2PerRow*rows + blockFixedF2) * f2 * um2ToMm2
	// A spare row adds a row of cells plus its decoder slice; a spare
	// column adds a column of cells plus its sense amp.
	spareUm2 := float64(g.SpareRowsPerBlock)*(cols*cellUm2+rowDecF2PerRow*f2) +
		float64(g.SpareColsPerBlock)*(rows*cellUm2+senseAmpF2PerColumn*f2)
	b.RedundancyMm2 = nb * spareUm2 * um2ToMm2
	// Check bits widen every stored word, so the ECC area replicates
	// the cell array and the pitch-matched array overhead by the code's
	// storage fraction.
	b.ECCMm2 = g.ECCOverheadFrac * (b.CellMm2 + b.ArrayOverheadMm2)
	b.MacroOverheadMm2 = macroFixedMm2 + float64(g.Banks)*perBankControlMm2 + float64(g.InterfaceBits)*perInterfaceBitMm2
	if g.WithBIST {
		b.BISTMm2 = LogicAreaMm2(g.Process, bistControllerKGate)
	}
	b.TotalMm2 = b.CellMm2 + b.ArrayOverheadMm2 + b.RedundancyMm2 + b.ECCMm2 + b.MacroOverheadMm2 + b.BISTMm2
	b.EfficiencyMbitPerMm2 = units.Ratio(units.BitsToMbit(int64(g.TotalBits())), b.TotalMm2)
	return b, nil
}

// LogicAreaMm2 returns the area of kgates of random logic on process p.
func LogicAreaMm2(p tech.Process, kgates float64) float64 {
	if kgates <= 0 || p.LogicDensityKGatesPerMm2 <= 0 {
		return 0
	}
	return kgates / p.LogicDensityKGatesPerMm2
}

// PadAreaMm2 is the area of one I/O pad cell including its driver.
const PadAreaMm2 = 0.011

// PadRingAreaMm2 returns the area consumed by an I/O ring of the given
// signal count (power/ground pads are added as 25% on top).
func PadRingAreaMm2(signalPins int) float64 {
	if signalPins <= 0 {
		return 0
	}
	return float64(signalPins) * 1.25 * PadAreaMm2
}

// Die aggregates logic, one or more memory macros and the pad ring into a
// die-area estimate with a pad-limitation check (paper §1: "pad-limited
// designs may be transformed into non-pad-limited ones").
type Die struct {
	LogicKGates float64
	MacroAreas  []AreaBreakdown
	SignalPins  int
	Process     tech.Process
}

// DieReport is the result of composing a die.
type DieReport struct {
	CoreMm2    float64 // logic + macros
	PadRingMm2 float64
	TotalMm2   float64
	// PadLimited is true when the perimeter needed by the pads exceeds
	// the perimeter of the core-limited die.
	PadLimited bool
}

// Compose computes the die report.
func (d Die) Compose() DieReport {
	var r DieReport
	r.CoreMm2 = LogicAreaMm2(d.Process, d.LogicKGates)
	for _, m := range d.MacroAreas {
		r.CoreMm2 += m.TotalMm2
	}
	r.PadRingMm2 = PadRingAreaMm2(d.SignalPins)
	r.TotalMm2 = r.CoreMm2 + r.PadRingMm2
	// Pad-limitation: pads sit on the perimeter at ~90 µm pitch. The
	// core-limited edge is sqrt(core); if the pads need more edge, the
	// die is pad limited.
	padEdgeMm := float64(d.SignalPins) * 1.25 * 0.090 / 4
	coreEdgeMm := math.Sqrt(r.CoreMm2)
	r.PadLimited = padEdgeMm > coreEdgeMm
	if r.PadLimited {
		// The die grows to fit the ring.
		r.TotalMm2 = padEdgeMm*padEdgeMm + r.PadRingMm2
	}
	return r
}

// DiesPerWafer estimates gross dies per wafer for the process, using the
// classic circular-wafer formula with edge loss.
func DiesPerWafer(p tech.Process, dieMm2 float64) int {
	if dieMm2 <= 0 {
		return 0
	}
	d := p.WaferDiameterMm
	waferArea := math.Pi * d * d / 4
	gross := waferArea/dieMm2 - math.Pi*d/math.Sqrt(2*dieMm2)
	if gross < 0 {
		return 0
	}
	return int(gross)
}
