package geom

import (
	"math"

	"edram/internal/units"
)

// Floorplan is the physical arrangement of a macro: building blocks in
// a near-square grid with the control/interface strip along one edge.
// It supplies the quantities the interface models need — macro
// dimensions and the internal interface wire length.
type Floorplan struct {
	// GridCols x GridRows of building blocks (GridCols*GridRows >= Blocks;
	// the last row may be partial).
	GridCols, GridRows int
	// BlockWmm / BlockHmm are one building block's physical dimensions
	// including its decoder and sense-amp strips.
	BlockWmm, BlockHmm float64
	// WidthMm / HeightMm are the macro's outer dimensions (control
	// strip included).
	WidthMm, HeightMm float64
	// ControlStripMm is the height of the control/interface strip.
	ControlStripMm float64
	// InterfaceWireMm is the average wire length from the interface
	// strip to a block (the on-chip load the power model sees).
	InterfaceWireMm float64
}

// AspectRatio returns width/height (>= values near 1 are routable).
func (fp Floorplan) AspectRatio() float64 {
	return units.Ratio(fp.WidthMm, fp.HeightMm)
}

// Floorplan computes the physical plan of the macro.
func (g MacroGeometry) Floorplan() (Floorplan, error) {
	if err := g.Validate(); err != nil {
		return Floorplan{}, err
	}
	f := g.Process.FeatureUm // µm
	cellW := 2 * f           // 8F² cell: 2F x 4F
	cellH := 4 * f

	cols := float64(g.BlockColumns())
	rows := float64(g.BlockRows())
	// Strip dimensions follow the area constants: the sense-amp strip
	// spans the block width, the decoder strip the block height.
	saStripH := senseAmpF2PerColumn * f * f / cellW // µm
	decStripW := rowDecF2PerRow * f * f / cellH     // µm
	blockW := (cols*cellW + decStripW) / 1000       // mm
	blockH := (rows*cellH + saStripH) / 1000        // mm

	gridCols := int(math.Ceil(math.Sqrt(float64(g.Blocks) * blockH / blockW)))
	if gridCols < 1 {
		gridCols = 1
	}
	if gridCols > g.Blocks {
		gridCols = g.Blocks
	}
	gridRows := units.CeilDiv(g.Blocks, gridCols)

	width := float64(gridCols) * blockW
	a, err := g.Area()
	if err != nil {
		return Floorplan{}, err
	}
	// The control strip absorbs the macro overhead + BIST area along
	// the bottom edge.
	strip := (a.MacroOverheadMm2 + a.BISTMm2) / width
	height := float64(gridRows)*blockH + strip

	fp := Floorplan{
		GridCols:       gridCols,
		GridRows:       gridRows,
		BlockWmm:       blockW,
		BlockHmm:       blockH,
		WidthMm:        width,
		HeightMm:       height,
		ControlStripMm: strip,
	}
	// Average Manhattan distance from the strip (bottom edge centre) to
	// a block centre: W/4 horizontally + H/2 vertically.
	fp.InterfaceWireMm = width/4 + (height-strip)/2
	return fp, nil
}
