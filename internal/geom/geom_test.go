package geom

import (
	"testing"
	"testing/quick"

	"edram/internal/tech"
	"edram/internal/units"
)

func macro(blocks, banks, blockBits, iface, page int) MacroGeometry {
	return MacroGeometry{
		Process:       tech.Siemens024(),
		BlockBits:     blockBits,
		Blocks:        blocks,
		Banks:         banks,
		PageBits:      page,
		InterfaceBits: iface,
		WithBIST:      true,
	}
}

func TestBlockShape(t *testing.T) {
	g := macro(16, 4, Block1M, 256, 2048)
	if g.BlockColumns() != 1024 || g.BlockRows() != 1024 {
		t.Errorf("1-Mbit block should be 1024x1024, got %dx%d", g.BlockRows(), g.BlockColumns())
	}
	g.BlockBits = Block256K
	if g.BlockColumns() != 512 || g.BlockRows() != 512 {
		t.Errorf("256-Kbit block should be 512x512, got %dx%d", g.BlockRows(), g.BlockColumns())
	}
}

func TestPaperAreaEfficiency(t *testing.T) {
	// Paper §5: "Large memory modules, from 8-16 Mbit upwards,
	// achieving an area efficiency of about 1 Mbit/mm²."
	for _, mbit := range []int{8, 16, 32, 64, 128} {
		g := macro(mbit, 4, Block1M, 256, 2048)
		a, err := g.Area()
		if err != nil {
			t.Fatalf("%d Mbit: %v", mbit, err)
		}
		if a.EfficiencyMbitPerMm2 < 0.85 || a.EfficiencyMbitPerMm2 > 1.6 {
			t.Errorf("%d Mbit macro efficiency %.2f Mbit/mm², want ~1", mbit, a.EfficiencyMbitPerMm2)
		}
	}
}

func TestSmallMacroInefficient(t *testing.T) {
	small := macro(1, 1, Block1M, 16, 256)
	large := macro(16, 4, Block1M, 256, 2048)
	sa, err := small.Area()
	if err != nil {
		t.Fatal(err)
	}
	la, err := large.Area()
	if err != nil {
		t.Fatal(err)
	}
	if sa.EfficiencyMbitPerMm2 >= la.EfficiencyMbitPerMm2 {
		t.Fatalf("1-Mbit macro (%.2f) must be less area-efficient than 16-Mbit (%.2f)",
			sa.EfficiencyMbitPerMm2, la.EfficiencyMbitPerMm2)
	}
	if sa.EfficiencyMbitPerMm2 > 0.7 {
		t.Errorf("tiny macro efficiency %.2f suspiciously high", sa.EfficiencyMbitPerMm2)
	}
}

func TestSmallBlocksLessDense(t *testing.T) {
	// Same 8-Mbit capacity from 1-Mbit vs 256-Kbit blocks: the small
	// blocks pay more per-block overhead (the flexibility/density trade).
	big := macro(8, 4, Block1M, 256, 2048)
	small := macro(32, 4, Block256K, 256, 2048)
	ba, err := big.Area()
	if err != nil {
		t.Fatal(err)
	}
	sa, err := small.Area()
	if err != nil {
		t.Fatal(err)
	}
	if sa.TotalMm2 <= ba.TotalMm2 {
		t.Fatalf("256-Kbit-block macro (%.2f mm²) must be larger than 1-Mbit-block macro (%.2f mm²)",
			sa.TotalMm2, ba.TotalMm2)
	}
}

func TestProcessDensityOrdering(t *testing.T) {
	// The same macro on the logic-based process must be much larger
	// (paper §3: logic base => poor memory density).
	mk := func(p tech.Process) float64 {
		g := macro(16, 4, Block1M, 256, 2048)
		g.Process = p
		a, err := g.Area()
		if err != nil {
			t.Fatal(err)
		}
		return a.TotalMm2
	}
	dram := mk(tech.Siemens024())
	logic := mk(tech.Logic024())
	merged := mk(tech.Merged024())
	if !(dram < merged && merged < logic) {
		t.Fatalf("area ordering violated: dram %.1f merged %.1f logic %.1f", dram, merged, logic)
	}
	if logic/dram < 1.8 {
		t.Errorf("logic-based macro should be ~2-3x larger, got %.2fx", logic/dram)
	}
}

func TestRedundancyCostsArea(t *testing.T) {
	g := macro(16, 4, Block1M, 256, 2048)
	base, err := g.Area()
	if err != nil {
		t.Fatal(err)
	}
	g.SpareRowsPerBlock, g.SpareColsPerBlock = 4, 4
	red, err := g.Area()
	if err != nil {
		t.Fatal(err)
	}
	if red.TotalMm2 <= base.TotalMm2 || red.RedundancyMm2 <= 0 {
		t.Fatal("redundancy must cost area")
	}
	// But only a small fraction (spares are a handful of rows/cols).
	if red.RedundancyMm2/red.TotalMm2 > 0.05 {
		t.Errorf("redundancy share %.1f%% too large", 100*red.RedundancyMm2/red.TotalMm2)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*MacroGeometry)
	}{
		{"bad block size", func(g *MacroGeometry) { g.BlockBits = 512 * units.Kbit }},
		{"zero blocks", func(g *MacroGeometry) { g.Blocks = 0 }},
		{"banks exceed blocks", func(g *MacroGeometry) { g.Banks = 99 }},
		{"banks not dividing blocks", func(g *MacroGeometry) { g.Blocks = 6; g.Banks = 4 }},
		{"interface too narrow", func(g *MacroGeometry) { g.InterfaceBits = 8 }},
		{"interface too wide", func(g *MacroGeometry) { g.InterfaceBits = 1024 }},
		{"interface not pow2", func(g *MacroGeometry) { g.InterfaceBits = 48 }},
		{"page below interface", func(g *MacroGeometry) { g.PageBits = 128 }},
		{"page beyond bank span", func(g *MacroGeometry) { g.PageBits = 1 << 20 }},
		{"negative spares", func(g *MacroGeometry) { g.SpareRowsPerBlock = -1 }},
		{"bad process", func(g *MacroGeometry) { g.Process.FeatureUm = 0 }},
	}
	for _, c := range cases {
		g := macro(16, 4, Block1M, 256, 2048)
		c.mut(&g)
		if g.Validate() == nil {
			t.Errorf("%s: validation should fail", c.name)
		}
		if _, err := g.Area(); err == nil {
			t.Errorf("%s: Area should propagate validation failure", c.name)
		}
	}
}

func TestAreaBreakdownSums(t *testing.T) {
	f := func(blocksRaw, banksRaw, ifRaw uint8) bool {
		blocks := 1 << (blocksRaw % 8) // 1..128
		banks := 1 << (banksRaw % 4)   // 1..8
		if banks > blocks {
			banks = blocks
		}
		iface := 16 << (ifRaw % 6) // 16..512
		page := iface * 4
		if page > 512*(blocks/banks) {
			page = 512 * (blocks / banks)
		}
		if page < iface {
			return true // skip configs the concept forbids
		}
		g := macro(blocks, banks, Block1M, iface, page)
		a, err := g.Area()
		if err != nil {
			return true
		}
		sum := a.CellMm2 + a.ArrayOverheadMm2 + a.RedundancyMm2 + a.MacroOverheadMm2 + a.BISTMm2
		return sum > 0 && abs(sum-a.TotalMm2) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestLogicArea(t *testing.T) {
	p := tech.Logic024()
	// 500 kgates on a 45 kgates/mm² process ≈ 11 mm².
	a := LogicAreaMm2(p, 500)
	if a < 10 || a > 13 {
		t.Errorf("500 kgates area %.1f mm² implausible", a)
	}
	if LogicAreaMm2(p, 0) != 0 || LogicAreaMm2(p, -5) != 0 {
		t.Error("degenerate gate counts must yield 0")
	}
}

func TestPadRing(t *testing.T) {
	if PadRingAreaMm2(0) != 0 || PadRingAreaMm2(-3) != 0 {
		t.Error("no pins, no ring")
	}
	if PadRingAreaMm2(200) <= PadRingAreaMm2(100) {
		t.Error("more pins must cost more ring")
	}
}

func TestPadLimitedTransformation(t *testing.T) {
	// Paper §1: embedding can turn a pad-limited design into a
	// non-pad-limited one. A small logic die with a 256-bit external
	// memory bus is pad limited; absorbing the memory (bus becomes
	// internal) removes the limitation.
	p := tech.Logic024()
	external := Die{LogicKGates: 100, SignalPins: 256 + 60, Process: p}
	re := external.Compose()
	if !re.PadLimited {
		t.Fatalf("small die with 316 signal pins should be pad limited (core %.1f mm²)", re.CoreMm2)
	}

	g := macro(16, 4, Block1M, 256, 2048)
	a, err := g.Area()
	if err != nil {
		t.Fatal(err)
	}
	embedded := Die{LogicKGates: 100, MacroAreas: []AreaBreakdown{a}, SignalPins: 60, Process: p}
	rm := embedded.Compose()
	if rm.PadLimited {
		t.Fatal("embedded version should not be pad limited")
	}
}

func TestDiesPerWafer(t *testing.T) {
	p := tech.Siemens024()
	small := DiesPerWafer(p, 20)
	big := DiesPerWafer(p, 200)
	if small <= big || big <= 0 {
		t.Fatalf("dies per wafer must fall with die size: %d vs %d", small, big)
	}
	if DiesPerWafer(p, 0) != 0 {
		t.Error("zero die area must yield 0 dies")
	}
	// 200-mm wafer has ~31400 mm²; a 20-mm² die should give well over
	// a thousand gross dies.
	if small < 1000 || small > 1600 {
		t.Errorf("20 mm² on 200 mm wafer: %d dies implausible", small)
	}
}

func TestFloorplanBasics(t *testing.T) {
	g := macro(16, 4, Block1M, 256, 2048)
	fp, err := g.Floorplan()
	if err != nil {
		t.Fatal(err)
	}
	if fp.GridCols*fp.GridRows < 16 {
		t.Fatalf("grid %dx%d cannot hold 16 blocks", fp.GridCols, fp.GridRows)
	}
	if fp.WidthMm <= 0 || fp.HeightMm <= 0 || fp.BlockWmm <= 0 || fp.BlockHmm <= 0 {
		t.Fatal("dimensions must be positive")
	}
	// The floorplan footprint must be close to (and not below) the
	// area model's total: gridding overhead only.
	a, err := g.Area()
	if err != nil {
		t.Fatal(err)
	}
	foot := fp.WidthMm * fp.HeightMm
	if foot < 0.9*a.TotalMm2 || foot > 1.4*a.TotalMm2 {
		t.Errorf("floorplan %.1f mm² vs area model %.1f mm²", foot, a.TotalMm2)
	}
	// Near-square.
	ar := fp.AspectRatio()
	if ar < 0.4 || ar > 2.5 {
		t.Errorf("aspect ratio %.2f unroutable", ar)
	}
	// Interface wire length is a few mm for a 16-Mbit macro.
	if fp.InterfaceWireMm < 0.5 || fp.InterfaceWireMm > 10 {
		t.Errorf("interface wire %.2f mm implausible", fp.InterfaceWireMm)
	}
}

func TestFloorplanScalesWithCapacity(t *testing.T) {
	small, err := macro(4, 4, Block1M, 64, 512).Floorplan()
	if err != nil {
		t.Fatal(err)
	}
	large, err := macro(64, 4, Block1M, 64, 512).Floorplan()
	if err != nil {
		t.Fatal(err)
	}
	if large.WidthMm*large.HeightMm <= small.WidthMm*small.HeightMm {
		t.Error("bigger macros must occupy more silicon")
	}
	if large.InterfaceWireMm <= small.InterfaceWireMm {
		t.Error("bigger macros must have longer interface wires")
	}
}

func TestFloorplanInvalid(t *testing.T) {
	g := macro(16, 4, Block1M, 256, 2048)
	g.Blocks = 0
	if _, err := g.Floorplan(); err == nil {
		t.Error("invalid geometry must error")
	}
}

// Property: the floorplan footprint always covers the block area and
// the grid always holds every block.
func TestFloorplanProperty(t *testing.T) {
	f := func(blocksRaw, blockSel uint8) bool {
		blocks := int(blocksRaw%64) + 1
		blockBits := Block1M
		if blockSel%2 == 0 {
			blockBits = Block256K
		}
		banks := 1
		g := MacroGeometry{
			Process: tech.Siemens024(), BlockBits: blockBits, Blocks: blocks,
			Banks: banks, PageBits: 512, InterfaceBits: 64,
		}
		fp, err := g.Floorplan()
		if err != nil {
			return true // invalid corner
		}
		if fp.GridCols*fp.GridRows < blocks {
			return false
		}
		blockArea := float64(blocks) * fp.BlockWmm * fp.BlockHmm
		return fp.WidthMm*fp.HeightMm >= blockArea
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
