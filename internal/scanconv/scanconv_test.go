package scanconv

import (
	"math"
	"testing"

	"edram/internal/edram"
	"edram/internal/mapping"
	"edram/internal/sched"
)

func TestStandards(t *testing.T) {
	for _, s := range []Standard{PAL50(), NTSC60()} {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
	// PAL field: 720x288x2 = 405 KB ≈ 3.16 Mbit — the awkward
	// non-power-of-two size of the §1 granularity argument.
	f := PAL50().FieldMbit()
	if f < 3.1 || f > 3.2 {
		t.Errorf("PAL field = %.2f Mbit, want ~3.16", f)
	}
	bad := PAL50()
	bad.ActiveWidth = 0
	if bad.Validate() == nil {
		t.Error("invalid standard must fail")
	}
}

func TestBudget(t *testing.T) {
	b, err := BudgetFor(PAL50(), 3)
	if err != nil {
		t.Fatal(err)
	}
	// 3 fields ≈ 9.49 Mbit: eDRAM fits 10 Mbit; commodity would need 16.
	if math.Abs(b.TotalMbit-3*PAL50().FieldMbit()) > 1e-9 {
		t.Error("budget must be fields x field size")
	}
	if b.EDRAMMbit != 10 {
		t.Errorf("eDRAM fit = %d Mbit, want 10", b.EDRAMMbit)
	}
	if _, err := BudgetFor(PAL50(), 0); err == nil {
		t.Error("zero fields must error")
	}
	if _, err := BudgetFor(Standard{}, 3); err == nil {
		t.Error("bad standard must error")
	}
}

func TestBandwidth(t *testing.T) {
	r, err := Bandwidth(PAL50(), 3)
	if err != nil {
		t.Fatal(err)
	}
	sum := r.AcquireGBps + r.InterpGBps + r.DisplayGBps
	if math.Abs(sum-r.TotalGBps) > 1e-12 {
		t.Error("breakdown must sum")
	}
	// Acquisition runs at the input rate, display at the doubled rate.
	if math.Abs(r.DisplayGBps/r.AcquireGBps-2) > 1e-9 {
		t.Errorf("display/acquire = %v, want 2 (100 Hz from 50 Hz)", r.DisplayGBps/r.AcquireGBps)
	}
	// The interpolator dominates (3 fields per output field).
	if r.InterpGBps <= r.DisplayGBps {
		t.Error("interpolation reads must dominate")
	}
	// Total for PAL 3-field conversion: ~0.2 GB/s.
	if r.TotalGBps < 0.1 || r.TotalGBps > 0.5 {
		t.Errorf("total %.3f GB/s implausible", r.TotalGBps)
	}
	if _, err := Bandwidth(PAL50(), 0); err == nil {
		t.Error("zero fields must error")
	}
}

func TestClientsAndRealTime(t *testing.T) {
	cs, err := Clients(PAL50(), 3, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 3 {
		t.Fatalf("clients = %d", len(cs))
	}
	// Run two output fields on the exact-fit macro: must complete
	// within the output field period x2 with margin.
	b, err := BudgetFor(PAL50(), 3)
	if err != nil {
		t.Fatal(err)
	}
	m, err := edram.Build(edram.Spec{CapacityMbit: b.EDRAMMbit, InterfaceBits: 64})
	if err != nil {
		t.Fatal(err)
	}
	cfg := m.DeviceConfig()
	cfg.AutoRefresh = false
	gm := mapping.Geometry{Banks: cfg.Banks, RowsBank: cfg.RowsPerBank, PageBytes: cfg.PageBits / 8}
	mp, err := mapping.NewBankInterleaved(gm)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sched.RunWithOptions(cfg, mp, sched.Options{Policy: sched.Deadline}, cs)
	if err != nil {
		t.Fatal(err)
	}
	budgetNs := 2 * 1e9 / float64(PAL50().FieldRateHz*PAL50().OutputFactor)
	if res.DurationNs > 1.05*budgetNs {
		t.Errorf("2 output fields took %.2f ms, budget %.2f ms", res.DurationNs/1e6, budgetNs/1e6)
	}
	// The display client's deadline must hold comfortably.
	if res.Clients[2].Stats.P99Ns > 2000 {
		t.Errorf("display p99 %.0f ns too high", res.Clients[2].Stats.P99Ns)
	}
	if _, err := Clients(PAL50(), 3, 0, 1); err == nil {
		t.Error("zero output fields must error")
	}
	if _, err := Clients(Standard{}, 3, 1, 1); err == nil {
		t.Error("bad standard must error")
	}
}
