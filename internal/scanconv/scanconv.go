// Package scanconv models the memory side of a TV scan-rate converter —
// first in the paper's §5 list of eDRAM applications ("TV scan-rate
// converters, TV picture-in-picture chips, …"). A 50-Hz interlaced
// input is up-converted to a 100-Hz display by motion-adaptive
// interpolation over the last few fields, so the chip needs field
// stores (an awkward, non-power-of-two size: exactly the granularity
// argument of §1) and three concurrent memory clients: acquisition
// write, interpolator reads, display read-out.
package scanconv

import (
	"fmt"
	"math/rand"

	"edram/internal/sched"
	"edram/internal/traffic"
	"edram/internal/units"
)

// Standard describes the interlaced source.
type Standard struct {
	Name         string
	ActiveWidth  int // pixels per line
	ActiveLines  int // lines per field
	FieldRateHz  int
	BytesPerPix  int // 4:2:2 = 2
	OutputFactor int // field-rate multiplication (2 = 100 Hz from 50 Hz)
}

// PAL50 returns the 625-line 50-Hz system (720x288 active per field).
func PAL50() Standard {
	return Standard{Name: "PAL-50", ActiveWidth: 720, ActiveLines: 288,
		FieldRateHz: 50, BytesPerPix: 2, OutputFactor: 2}
}

// NTSC60 returns the 525-line 60-Hz system (720x240 active per field).
func NTSC60() Standard {
	return Standard{Name: "NTSC-60", ActiveWidth: 720, ActiveLines: 240,
		FieldRateHz: 60, BytesPerPix: 2, OutputFactor: 2}
}

// Validate checks the standard.
func (s Standard) Validate() error {
	if s.ActiveWidth <= 0 || s.ActiveLines <= 0 || s.FieldRateHz <= 0 ||
		s.BytesPerPix <= 0 || s.OutputFactor < 1 {
		return fmt.Errorf("scanconv: invalid standard %+v", s)
	}
	return nil
}

// FieldBytes returns one field store's size.
func (s Standard) FieldBytes() int64 {
	return int64(s.ActiveWidth) * int64(s.ActiveLines) * int64(s.BytesPerPix)
}

// FieldMbit returns one field store in Mbit.
func (s Standard) FieldMbit() float64 { return units.BytesToMbit(s.FieldBytes()) }

// Budget is the converter's memory budget.
type Budget struct {
	Standard Standard
	// Fields held for motion-adaptive interpolation.
	Fields    int
	TotalMbit float64
	EDRAMMbit int // exact-fit macro capacity (1-Mbit granularity)
}

// BudgetFor computes the budget for an n-field motion-adaptive
// converter (3 is typical: current, previous, two-before).
func BudgetFor(s Standard, fields int) (Budget, error) {
	if err := s.Validate(); err != nil {
		return Budget{}, err
	}
	if fields < 1 {
		return Budget{}, fmt.Errorf("scanconv: need at least one field store")
	}
	b := Budget{Standard: s, Fields: fields}
	b.TotalMbit = float64(fields) * s.FieldMbit()
	b.EDRAMMbit = int(b.TotalMbit)
	if float64(b.EDRAMMbit) < b.TotalMbit {
		b.EDRAMMbit++
	}
	return b, nil
}

// BandwidthReport breaks down the converter's memory traffic.
type BandwidthReport struct {
	AcquireGBps float64 // input field writes
	InterpGBps  float64 // interpolator reads (fields x output rate)
	DisplayGBps float64 // output read-out at the raised rate
	TotalGBps   float64
}

// Bandwidth computes the requirement: the interpolator reads `fields`
// source fields for every output field.
func Bandwidth(s Standard, fields int) (BandwidthReport, error) {
	if err := s.Validate(); err != nil {
		return BandwidthReport{}, err
	}
	if fields < 1 {
		return BandwidthReport{}, fmt.Errorf("scanconv: need at least one field store")
	}
	fieldBytesPerSec := float64(s.FieldBytes()) * float64(s.FieldRateHz)
	outRate := float64(s.FieldRateHz * s.OutputFactor)
	var r BandwidthReport
	r.AcquireGBps = fieldBytesPerSec / 1e9
	r.InterpGBps = float64(fields) * float64(s.FieldBytes()) * outRate / 1e9
	r.DisplayGBps = float64(s.FieldBytes()) * outRate / 1e9
	r.TotalGBps = r.AcquireGBps + r.InterpGBps + r.DisplayGBps
	return r, nil
}

// Clients builds the converter's memory clients for `outFields` output
// fields of traffic. Field stores are laid out consecutively.
func Clients(s Standard, fields, outFields int, seed int64) ([]sched.Client, error) {
	bw, err := Bandwidth(s, fields)
	if err != nil {
		return nil, err
	}
	if outFields < 1 {
		return nil, fmt.Errorf("scanconv: need at least one output field")
	}
	const lineReq = 128 // bytes per request (one burst of a video line)
	span := s.FieldBytes() * int64(fields)
	reqsFor := func(gbps float64) int {
		perField := gbps * 1e9 / float64(s.FieldRateHz*s.OutputFactor)
		n := int(perField/lineReq) * outFields
		if n < 1 {
			n = 1
		}
		return n
	}
	return []sched.Client{
		{Name: "acquire", Gen: &traffic.Sequential{ClientID: 0, StartB: 0, LimitB: span,
			Bits: lineReq * 8, Write: true, RateGB: bw.AcquireGBps, Count: reqsFor(bw.AcquireGBps)}},
		{Name: "interp", Gen: &traffic.Random{ClientID: 1, StartB: 0, WindowB: span,
			Bits: lineReq * 8, RateGB: bw.InterpGBps, Count: reqsFor(bw.InterpGBps),
			Rng: rand.New(rand.NewSource(seed))}},
		{Name: "display", LatencyBudgetNs: 1000, Gen: &traffic.Sequential{ClientID: 2, StartB: 0,
			LimitB: span, Bits: lineReq * 8, RateGB: bw.DisplayGBps, Count: reqsFor(bw.DisplayGBps)}},
	}, nil
}
