package traffic

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestIntervalNs(t *testing.T) {
	// 64 bits = 8 bytes at 1 GB/s => 8 ns between requests.
	if got := IntervalNs(64, 1); math.Abs(got-8) > 1e-9 {
		t.Errorf("interval = %v, want 8", got)
	}
	if IntervalNs(0, 1) != 0 || IntervalNs(64, 0) != 0 {
		t.Error("degenerate inputs must yield 0")
	}
}

func TestSequential(t *testing.T) {
	g := &Sequential{ClientID: 3, StartB: 1000, Bits: 64, RateGB: 1, Count: 5}
	reqs := Slice(g)
	if len(reqs) != 5 {
		t.Fatalf("got %d requests", len(reqs))
	}
	for i, r := range reqs {
		if r.Client != 3 {
			t.Error("client id lost")
		}
		if r.AddrB != 1000+int64(i*8) {
			t.Errorf("req %d addr %d", i, r.AddrB)
		}
		if math.Abs(r.IssueNs-float64(i)*8) > 1e-9 {
			t.Errorf("req %d issue %v", i, r.IssueNs)
		}
	}
}

func TestSequentialWrap(t *testing.T) {
	g := &Sequential{StartB: 0, LimitB: 16, Bits: 64, RateGB: 1, Count: 4}
	reqs := Slice(g)
	want := []int64{0, 8, 0, 8}
	for i, r := range reqs {
		if r.AddrB != want[i] {
			t.Errorf("req %d addr %d, want %d", i, r.AddrB, want[i])
		}
	}
}

func TestStrided(t *testing.T) {
	g := &Strided{StartB: 0, StrideB: 100, LimitB: 250, Bits: 32, RateGB: 1, Count: 4}
	reqs := Slice(g)
	want := []int64{0, 100, 200, 50} // 300 % 250 = 50
	for i, r := range reqs {
		if r.AddrB != want[i] {
			t.Errorf("req %d addr %d, want %d", i, r.AddrB, want[i])
		}
	}
}

func TestRandomDeterministicAndBounded(t *testing.T) {
	mk := func() []Request {
		return Slice(&Random{WindowB: 4096, Bits: 64, RateGB: 1, Count: 100,
			Rng: rand.New(rand.NewSource(7))})
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must reproduce the stream")
		}
		if a[i].AddrB < 0 || a[i].AddrB >= 4096 {
			t.Fatalf("addr %d out of window", a[i].AddrB)
		}
		if a[i].AddrB%8 != 0 {
			t.Fatalf("addr %d not aligned to request size", a[i].AddrB)
		}
	}
	// Default RNG kicks in when none is given.
	c := Slice(&Random{WindowB: 4096, Bits: 64, RateGB: 1, Count: 3})
	if len(c) != 3 {
		t.Error("default-rng stream broken")
	}
}

func TestBlock2D(t *testing.T) {
	g := &Block2D{
		BaseB: 0, PitchB: 720, Lines: 576,
		BlockW: 16, BlockH: 4, RateGB: 1, Blocks: 10,
		Rng: rand.New(rand.NewSource(1)),
	}
	reqs := Slice(g)
	if len(reqs) != 40 {
		t.Fatalf("10 blocks x 4 lines = 40 requests, got %d", len(reqs))
	}
	// Within one block, consecutive requests step by exactly one pitch.
	for b := 0; b < 10; b++ {
		for l := 1; l < 4; l++ {
			prev, cur := reqs[b*4+l-1], reqs[b*4+l]
			if cur.AddrB-prev.AddrB != 720 {
				t.Fatalf("block %d line %d: step %d, want pitch 720", b, l, cur.AddrB-prev.AddrB)
			}
		}
	}
	// Every request carries the block width.
	for _, r := range reqs {
		if r.Bits != 16*8 {
			t.Fatalf("request bits = %d", r.Bits)
		}
	}
}

func TestMergeOrdersByIssue(t *testing.T) {
	a := &Sequential{ClientID: 0, Bits: 64, RateGB: 0.5, Count: 5}
	b := &Sequential{ClientID: 1, Bits: 64, RateGB: 2, Count: 5}
	merged := Merge(a, b)
	if len(merged) != 10 {
		t.Fatalf("merged %d", len(merged))
	}
	for i := 1; i < len(merged); i++ {
		if merged[i].IssueNs < merged[i-1].IssueNs {
			t.Fatal("merge must be time ordered")
		}
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize(nil, 3)
	if s.Count != 0 || s.MaxFIFODepth != 3 {
		t.Error("empty summary wrong")
	}
	lats := []float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	s = Summarize(lats, 7)
	if s.Count != 10 || s.MaxNs != 100 {
		t.Error("count/max wrong")
	}
	if math.Abs(s.MeanNs-55) > 1e-9 {
		t.Errorf("mean = %v", s.MeanNs)
	}
	if s.P50Ns != 50 || s.P99Ns != 90 {
		t.Errorf("p50=%v p99=%v", s.P50Ns, s.P99Ns)
	}
	if !strings.Contains(s.String(), "fifo=7") {
		t.Error("String must include fifo depth")
	}
	// Summarize must not mutate the input.
	if lats[0] != 10 || lats[9] != 100 {
		t.Error("input slice mutated")
	}
}

func TestFIFODepthFor(t *testing.T) {
	// 8-byte requests at 1 GB/s arrive every 8 ns; 100 ns of worst-case
	// latency needs 13 slots.
	if d := FIFODepthFor(100, 64, 1); d != 13 {
		t.Errorf("depth = %d, want 13", d)
	}
	if FIFODepthFor(0, 64, 1) != 1 || FIFODepthFor(100, 0, 1) != 1 {
		t.Error("degenerate cases must yield 1")
	}
	// Higher latency, deeper FIFO.
	if FIFODepthFor(1000, 64, 1) <= FIFODepthFor(100, 64, 1) {
		t.Error("depth must grow with latency")
	}
}

// Property: percentiles are ordered p50 <= p95 <= p99 <= max.
func TestSummarizeOrderProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		lats := make([]float64, len(raw))
		for i, v := range raw {
			lats[i] = float64(v)
		}
		s := Summarize(lats, 0)
		return s.P50Ns <= s.P95Ns && s.P95Ns <= s.P99Ns && s.P99Ns <= s.MaxNs && s.MeanNs <= s.MaxNs
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: sequential streams have monotone issue times and addresses
// within a wrap window.
func TestSequentialMonotoneProperty(t *testing.T) {
	f := func(bitsRaw, rateRaw uint8) bool {
		bits := 8 * (int(bitsRaw%64) + 1)
		rate := float64(rateRaw%40)/10 + 0.1
		g := &Sequential{Bits: bits, RateGB: rate, Count: 50}
		reqs := Slice(g)
		for i := 1; i < len(reqs); i++ {
			if reqs[i].IssueNs < reqs[i-1].IssueNs {
				return false
			}
			if reqs[i].AddrB != reqs[i-1].AddrB+int64(bits/8) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAlternating(t *testing.T) {
	g := &Alternating{BaseA: 0, BaseB: 1 << 20, Bits: 64, RateGB: 1, Count: 6}
	reqs := Slice(g)
	if len(reqs) != 6 {
		t.Fatalf("got %d requests", len(reqs))
	}
	wantAddrs := []int64{0, 1 << 20, 8, 1<<20 + 8, 16, 1<<20 + 16}
	for i, r := range reqs {
		if r.AddrB != wantAddrs[i] {
			t.Errorf("req %d addr %d, want %d", i, r.AddrB, wantAddrs[i])
		}
	}
	for i := 1; i < len(reqs); i++ {
		if reqs[i].IssueNs < reqs[i-1].IssueNs {
			t.Fatal("issue times must be monotone")
		}
	}
}
