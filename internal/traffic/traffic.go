// Package traffic models the memory clients of an embedded system: the
// request streams they emit (sequential, strided, random, 2-D block) and
// the statistics the paper's §3 cares about — sustained bandwidth per
// client and the latency that determines "the necessary FIFO depth".
//
// Addresses are byte addresses; request sizes are in bits to match the
// interface-width vocabulary of the paper.
package traffic

import (
	"fmt"
	"math/rand"
	"sort"
)

// Request is one memory transaction emitted by a client.
type Request struct {
	Client  int
	AddrB   int64 // byte address
	Bits    int   // transfer size in bits
	Write   bool
	IssueNs float64 // arrival time at the controller
}

// Generator produces a request stream. Next returns the following
// request and true, or a zero Request and false when the stream ends.
type Generator interface {
	Next() (Request, bool)
}

// Sequential emits fixed-size requests at consecutive addresses with a
// fixed arrival rate — the classic streaming client (frame output,
// packet drain).
type Sequential struct {
	ClientID int
	StartB   int64
	// LimitB wraps the address back to StartB after LimitB bytes
	// (0 = never wrap).
	LimitB  int64
	Bits    int
	Write   bool
	RateGB  float64 // delivered bandwidth the client demands, GB/s
	Count   int     // number of requests to emit (0 = unbounded)
	emitted int
	offset  int64
}

// IntervalNs returns the request inter-arrival time implied by the rate.
func IntervalNs(bits int, rateGB float64) float64 {
	if rateGB <= 0 || bits <= 0 {
		return 0
	}
	bytes := float64(bits) / 8
	return bytes / rateGB // bytes / (GB/s) = ns
}

// Next implements Generator.
func (s *Sequential) Next() (Request, bool) {
	if s.Count > 0 && s.emitted >= s.Count {
		return Request{}, false
	}
	iv := IntervalNs(s.Bits, s.RateGB)
	r := Request{
		Client:  s.ClientID,
		AddrB:   s.StartB + s.offset,
		Bits:    s.Bits,
		Write:   s.Write,
		IssueNs: float64(s.emitted) * iv,
	}
	s.emitted++
	s.offset += int64(s.Bits / 8)
	if s.LimitB > 0 && s.offset >= s.LimitB {
		s.offset = 0
	}
	return r, true
}

// Strided emits requests with a constant address stride (column walks,
// interlaced field reads).
type Strided struct {
	ClientID int
	StartB   int64
	StrideB  int64
	LimitB   int64 // wrap window (0 = never)
	Bits     int
	Write    bool
	RateGB   float64
	Count    int
	emitted  int
	offset   int64
}

// Next implements Generator.
func (s *Strided) Next() (Request, bool) {
	if s.Count > 0 && s.emitted >= s.Count {
		return Request{}, false
	}
	iv := IntervalNs(s.Bits, s.RateGB)
	r := Request{
		Client:  s.ClientID,
		AddrB:   s.StartB + s.offset,
		Bits:    s.Bits,
		Write:   s.Write,
		IssueNs: float64(s.emitted) * iv,
	}
	s.emitted++
	s.offset += s.StrideB
	if s.LimitB > 0 && s.offset >= s.LimitB {
		s.offset %= s.LimitB
	}
	return r, true
}

// Random emits uniformly distributed addresses inside a window — the
// worst case for page locality (pointer chasing, hash probes).
type Random struct {
	ClientID int
	StartB   int64
	WindowB  int64
	Bits     int
	Write    bool
	RateGB   float64
	Count    int
	Rng      *rand.Rand
	emitted  int
}

// Next implements Generator.
func (r *Random) Next() (Request, bool) {
	if r.Count > 0 && r.emitted >= r.Count {
		return Request{}, false
	}
	if r.Rng == nil {
		r.Rng = rand.New(rand.NewSource(1))
	}
	iv := IntervalNs(r.Bits, r.RateGB)
	align := int64(r.Bits / 8)
	if align < 1 {
		align = 1
	}
	span := r.WindowB / align
	if span < 1 {
		span = 1
	}
	req := Request{
		Client:  r.ClientID,
		AddrB:   r.StartB + r.Rng.Int63n(span)*align,
		Bits:    r.Bits,
		Write:   r.Write,
		IssueNs: float64(r.emitted) * iv,
	}
	r.emitted++
	return req, true
}

// Block2D emits the access pattern of a 2-D block fetch from a raster
// frame (motion compensation, texture reads): for each block, one
// request per line of the block, at a random block position. This is the
// pattern whose page behaviour the frame mapping must optimize.
type Block2D struct {
	ClientID int
	BaseB    int64
	PitchB   int64 // bytes per frame line
	Lines    int   // frame height
	BlockW   int   // block width in bytes
	BlockH   int   // block height in lines
	Write    bool
	RateGB   float64
	Blocks   int // number of blocks to fetch
	Rng      *rand.Rand

	emitted int // requests emitted
	curLine int // next line within current block
	bx, by  int64
}

// Next implements Generator.
func (b *Block2D) Next() (Request, bool) {
	total := b.Blocks * b.BlockH
	if b.emitted >= total {
		return Request{}, false
	}
	if b.Rng == nil {
		b.Rng = rand.New(rand.NewSource(1))
	}
	if b.curLine == 0 { // new block: pick a position
		maxX := b.PitchB - int64(b.BlockW)
		if maxX < 1 {
			maxX = 1
		}
		maxY := int64(b.Lines - b.BlockH)
		if maxY < 1 {
			maxY = 1
		}
		b.bx = b.Rng.Int63n(maxX)
		b.by = b.Rng.Int63n(maxY)
	}
	bits := b.BlockW * 8
	iv := IntervalNs(bits, b.RateGB)
	r := Request{
		Client:  b.ClientID,
		AddrB:   b.BaseB + (b.by+int64(b.curLine))*b.PitchB + b.bx,
		Bits:    bits,
		Write:   b.Write,
		IssueNs: float64(b.emitted) * iv,
	}
	b.emitted++
	b.curLine++
	if b.curLine == b.BlockH {
		b.curLine = 0
	}
	return r, true
}

// Slice drains a generator into a slice (for tests and offline replay).
func Slice(g Generator) []Request {
	var out []Request
	for {
		r, ok := g.Next()
		if !ok {
			return out
		}
		out = append(out, r)
	}
}

// Merge interleaves several request streams by issue time into one
// time-ordered stream.
func Merge(gens ...Generator) []Request {
	var all []Request
	for _, g := range gens {
		all = append(all, Slice(g)...)
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].IssueNs < all[j].IssueNs })
	return all
}

// LatencyStats summarizes the service latencies of one client.
type LatencyStats struct {
	Count        int
	MeanNs       float64
	P50Ns        float64
	P95Ns        float64
	P99Ns        float64
	MaxNs        float64
	MaxFIFODepth int
}

// Summarize computes the statistics of a latency sample (ns).
func Summarize(latencies []float64, maxFIFO int) LatencyStats {
	s := LatencyStats{Count: len(latencies), MaxFIFODepth: maxFIFO}
	if len(latencies) == 0 {
		return s
	}
	sorted := append([]float64(nil), latencies...)
	sort.Float64s(sorted)
	sum := 0.0
	for _, v := range sorted {
		sum += v
	}
	s.MeanNs = sum / float64(len(sorted))
	pick := func(q float64) float64 {
		i := int(q * float64(len(sorted)-1))
		return sorted[i]
	}
	s.P50Ns = pick(0.50)
	s.P95Ns = pick(0.95)
	s.P99Ns = pick(0.99)
	s.MaxNs = sorted[len(sorted)-1]
	return s
}

// FIFODepthFor converts a worst-case service latency into the FIFO depth
// a client producing at rateGB with requests of bits needs to avoid
// overflow (paper §3: "minimize the latency for the memory clients and
// thus minimize the necessary FIFO depth").
func FIFODepthFor(maxLatencyNs float64, bits int, rateGB float64) int {
	iv := IntervalNs(bits, rateGB)
	if iv <= 0 || maxLatencyNs <= 0 {
		return 1
	}
	d := int(maxLatencyNs/iv) + 1
	if d < 1 {
		d = 1
	}
	return d
}

// String renders the stats compactly.
func (s LatencyStats) String() string {
	return fmt.Sprintf("n=%d mean=%.0fns p50=%.0f p95=%.0f p99=%.0f max=%.0f fifo=%d",
		s.Count, s.MeanNs, s.P50Ns, s.P95Ns, s.P99Ns, s.MaxNs, s.MaxFIFODepth)
}

// Alternating emits requests that alternate between two sequential
// regions — a client interleaving fetches from two buffers, e.g. the
// two reference frames of bidirectional motion compensation. Under most
// mappings the two regions occupy different rows of the same banks, so
// strict in-order service thrashes pages while a reordering controller
// can batch each region's run — the workload behind the A2 ablation.
type Alternating struct {
	ClientID int
	BaseA    int64
	BaseB    int64
	Bits     int
	RateGB   float64
	Count    int
	emitted  int
	offA     int64
	offB     int64
}

// Next implements Generator.
func (g *Alternating) Next() (Request, bool) {
	if g.Count > 0 && g.emitted >= g.Count {
		return Request{}, false
	}
	iv := IntervalNs(g.Bits, g.RateGB)
	r := Request{
		Client:  g.ClientID,
		Bits:    g.Bits,
		IssueNs: float64(g.emitted) * iv,
	}
	step := int64(g.Bits / 8)
	if g.emitted%2 == 0 {
		r.AddrB = g.BaseA + g.offA
		g.offA += step
	} else {
		r.AddrB = g.BaseB + g.offB
		g.offB += step
	}
	g.emitted++
	return r, true
}
