// Package cache implements a set-associative cache simulator with LRU
// replacement and write-back/write-allocate semantics. It is the
// substrate of the paper's §4.2 processor-memory-gap study: "deep cache
// structures are used to alleviate this problem, albeit at the cost of
// increased latency".
package cache

import (
	"fmt"

	"edram/internal/units"
)

// Config describes one cache level.
type Config struct {
	SizeBytes int
	LineBytes int
	Ways      int
	// HitNs is the access time of this level.
	HitNs float64
}

// Sets returns the number of sets.
func (c Config) Sets() int {
	if c.LineBytes <= 0 || c.Ways <= 0 {
		return 0
	}
	return c.SizeBytes / c.LineBytes / c.Ways
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.SizeBytes <= 0 || c.LineBytes <= 0 || c.Ways <= 0:
		return fmt.Errorf("cache: all dimensions must be positive: %+v", c)
	case !units.IsPow2(c.LineBytes):
		return fmt.Errorf("cache: line size %d must be a power of two", c.LineBytes)
	case c.SizeBytes%(c.LineBytes*c.Ways) != 0:
		return fmt.Errorf("cache: size %d not divisible by ways*line", c.SizeBytes)
	case !units.IsPow2(c.Sets()):
		return fmt.Errorf("cache: set count %d must be a power of two", c.Sets())
	case c.HitNs < 0:
		return fmt.Errorf("cache: hit time must be non-negative")
	}
	return nil
}

type line struct {
	tag   int64
	valid bool
	dirty bool
	age   uint64 // global LRU counter
}

// Stats accumulates cache activity.
type Stats struct {
	Accesses   int64
	Hits       int64
	Misses     int64
	Writebacks int64
}

// HitRate returns hits/accesses (0 when idle).
func (s Stats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

// Cache is one set-associative level.
type Cache struct {
	cfg   Config
	sets  [][]line
	tick  uint64
	stats Stats
}

// New builds a cache.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sets := make([][]line, cfg.Sets())
	for i := range sets {
		sets[i] = make([]line, cfg.Ways)
	}
	return &Cache{cfg: cfg, sets: sets}, nil
}

// Config returns the cache configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a copy of the counters.
func (c *Cache) Stats() Stats { return c.stats }

// Outcome reports one access.
type Outcome struct {
	Hit bool
	// Writeback is true when a dirty victim was evicted; its address
	// is VictimAddr.
	Writeback  bool
	VictimAddr int64
}

// Access looks up addr (byte address), allocating on miss
// (write-allocate) and marking dirty on write (write-back).
func (c *Cache) Access(addr int64, write bool) Outcome {
	if addr < 0 {
		addr = -addr
	}
	c.stats.Accesses++
	c.tick++
	lineAddr := addr / int64(c.cfg.LineBytes)
	set := int(lineAddr % int64(len(c.sets)))
	tag := lineAddr / int64(len(c.sets))

	ways := c.sets[set]
	for i := range ways {
		if ways[i].valid && ways[i].tag == tag {
			c.stats.Hits++
			ways[i].age = c.tick
			if write {
				ways[i].dirty = true
			}
			return Outcome{Hit: true}
		}
	}
	c.stats.Misses++
	// Choose victim: first invalid, else LRU.
	victim := 0
	for i := range ways {
		if !ways[i].valid {
			victim = i
			break
		}
		if ways[i].age < ways[victim].age {
			victim = i
		}
	}
	var out Outcome
	if ways[victim].valid && ways[victim].dirty {
		c.stats.Writebacks++
		out.Writeback = true
		victimLine := ways[victim].tag*int64(len(c.sets)) + int64(set)
		out.VictimAddr = victimLine * int64(c.cfg.LineBytes)
	}
	ways[victim] = line{tag: tag, valid: true, dirty: write, age: c.tick}
	return out
}

// Flush invalidates every line, returning the number of dirty lines that
// would be written back.
func (c *Cache) Flush() int {
	dirty := 0
	for s := range c.sets {
		for w := range c.sets[s] {
			if c.sets[s][w].valid && c.sets[s][w].dirty {
				dirty++
			}
			c.sets[s][w] = line{}
		}
	}
	return dirty
}

// Hierarchy chains an L1 and an optional L2 in front of a memory whose
// access time is MemoryNs. It produces per-access latencies for the CPU
// model.
type Hierarchy struct {
	L1 *Cache
	L2 *Cache // may be nil (the IRAM case: DRAM close enough to skip L2)
	// MemoryNs is the latency of a memory access (line fill) behind the
	// last cache level.
	MemoryNs float64
	// WritebackNs is the extra cost of writing back a dirty victim.
	WritebackNs float64
	// PrefetchNext, when true, also fills the next sequential line on a
	// last-level miss. On a wide memory interface the neighbour line
	// rides along (almost) free — the IRAM wide-interface argument;
	// PrefetchNs is its added latency cost (0 for a bus at least two
	// lines wide).
	PrefetchNext bool
	PrefetchNs   float64
}

// AccessNs runs one access through the hierarchy and returns its latency.
func (h *Hierarchy) AccessNs(addr int64, write bool) float64 {
	lat := h.L1.cfg.HitNs
	o1 := h.L1.Access(addr, write)
	if o1.Hit {
		return lat
	}
	if o1.Writeback {
		lat += h.writebackCost(o1.VictimAddr)
	}
	if h.L2 != nil {
		lat += h.L2.cfg.HitNs
		o2 := h.L2.Access(addr, write)
		if o2.Hit {
			return lat
		}
		if o2.Writeback {
			lat += h.WritebackNs
		}
	}
	lat += h.MemoryNs
	if h.PrefetchNext {
		lat += h.PrefetchNs
		next := addr + int64(h.L1.cfg.LineBytes)
		h.L1.Access(next, false)
		if h.L2 != nil {
			h.L2.Access(next, false)
		}
	}
	return lat
}

func (h *Hierarchy) writebackCost(victimAddr int64) float64 {
	if h.L2 != nil {
		// Victim lands in L2; only its own victim may reach memory.
		o := h.L2.Access(victimAddr, true)
		if o.Writeback {
			return h.WritebackNs
		}
		return 0
	}
	return h.WritebackNs
}
