package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func cfg16K() Config {
	return Config{SizeBytes: 16 << 10, LineBytes: 32, Ways: 2, HitNs: 2}
}

func mustNew(t *testing.T, c Config) *Cache {
	t.Helper()
	ch, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	return ch
}

func TestConfigValidate(t *testing.T) {
	if cfg16K().Validate() != nil {
		t.Fatal("good config rejected")
	}
	bad := []Config{
		{SizeBytes: 0, LineBytes: 32, Ways: 2},
		{SizeBytes: 16 << 10, LineBytes: 33, Ways: 2},
		{SizeBytes: 16<<10 + 5, LineBytes: 32, Ways: 2},
		{SizeBytes: 16 << 10, LineBytes: 32, Ways: 0},
		{SizeBytes: 16 << 10, LineBytes: 32, Ways: 2, HitNs: -1},
		{SizeBytes: 96, LineBytes: 32, Ways: 1}, // 3 sets, not pow2
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Errorf("bad config %d accepted: %+v", i, c)
		}
		if _, err := New(c); err == nil {
			t.Errorf("New accepted bad config %d", i)
		}
	}
	if cfg16K().Sets() != 256 {
		t.Errorf("sets = %d, want 256", cfg16K().Sets())
	}
}

func TestColdMissThenHit(t *testing.T) {
	c := mustNew(t, cfg16K())
	if o := c.Access(0x1000, false); o.Hit {
		t.Error("cold access must miss")
	}
	if o := c.Access(0x1000, false); !o.Hit {
		t.Error("second access must hit")
	}
	// Same line, different byte: still a hit.
	if o := c.Access(0x101F, false); !o.Hit {
		t.Error("same-line access must hit")
	}
	// Next line: miss.
	if o := c.Access(0x1020, false); o.Hit {
		t.Error("next line must miss")
	}
	s := c.Stats()
	if s.Accesses != 4 || s.Hits != 2 || s.Misses != 2 {
		t.Errorf("stats %+v", s)
	}
}

func TestLRUReplacement(t *testing.T) {
	// 2-way: fill a set with A and B, touch A, insert C -> B evicted.
	c := mustNew(t, cfg16K())
	setStride := int64(256 * 32) // sets * line
	a, b, x := int64(0), setStride, 2*setStride
	c.Access(a, false)
	c.Access(b, false)
	c.Access(a, false) // A most recent
	c.Access(x, false) // evicts B
	if o := c.Access(a, false); !o.Hit {
		t.Error("A must survive")
	}
	if o := c.Access(b, false); o.Hit {
		t.Error("B must have been evicted")
	}
}

func TestWritebackOnDirtyEviction(t *testing.T) {
	c := mustNew(t, cfg16K())
	setStride := int64(256 * 32)
	c.Access(0, true) // dirty
	c.Access(setStride, false)
	o := c.Access(2*setStride, false) // evicts line 0 (LRU, dirty)
	if !o.Writeback {
		t.Fatal("evicting a dirty line must write back")
	}
	if o.VictimAddr != 0 {
		t.Errorf("victim addr = %#x, want 0", o.VictimAddr)
	}
	if c.Stats().Writebacks != 1 {
		t.Error("writeback counter wrong")
	}
	// Clean eviction: no writeback.
	o = c.Access(3*setStride, false)
	if o.Writeback {
		t.Error("clean eviction must not write back")
	}
}

func TestFlush(t *testing.T) {
	c := mustNew(t, cfg16K())
	c.Access(0, true)
	c.Access(32, true)
	c.Access(64, false)
	if d := c.Flush(); d != 2 {
		t.Errorf("flush reported %d dirty lines, want 2", d)
	}
	if o := c.Access(0, false); o.Hit {
		t.Error("flush must invalidate")
	}
}

func TestNegativeAddress(t *testing.T) {
	c := mustNew(t, cfg16K())
	c.Access(-64, false)
	if o := c.Access(-64, false); !o.Hit {
		t.Error("negative addresses must be stable")
	}
}

func TestHitRate(t *testing.T) {
	if (Stats{}).HitRate() != 0 {
		t.Error("idle hit rate must be 0")
	}
	c := mustNew(t, cfg16K())
	c.Access(0, false)
	c.Access(0, false)
	if hr := c.Stats().HitRate(); hr != 0.5 {
		t.Errorf("hit rate = %v", hr)
	}
}

func TestHierarchyLatencies(t *testing.T) {
	l1 := mustNew(t, Config{SizeBytes: 1 << 10, LineBytes: 32, Ways: 2, HitNs: 2})
	l2 := mustNew(t, Config{SizeBytes: 16 << 10, LineBytes: 32, Ways: 4, HitNs: 10})
	h := &Hierarchy{L1: l1, L2: l2, MemoryNs: 120, WritebackNs: 60}

	// Cold: L1 miss + L2 miss + memory.
	if lat := h.AccessNs(0, false); lat != 2+10+120 {
		t.Errorf("cold latency = %v, want 132", lat)
	}
	// Now in both: L1 hit.
	if lat := h.AccessNs(0, false); lat != 2 {
		t.Errorf("hot latency = %v, want 2", lat)
	}
	// Evict line 0 from L1 only (two new lines in its 2-way L1 set,
	// which land in different L2 sets): next access is an L2 hit.
	h.AccessNs(1024, false)
	h.AccessNs(2048, false)
	lat := h.AccessNs(0, false)
	if lat != 2+10 {
		t.Errorf("L2-hit latency = %v, want 12", lat)
	}
}

func TestHierarchyWithoutL2(t *testing.T) {
	l1 := mustNew(t, Config{SizeBytes: 1 << 10, LineBytes: 32, Ways: 2, HitNs: 2})
	h := &Hierarchy{L1: l1, MemoryNs: 25, WritebackNs: 10}
	if lat := h.AccessNs(0, false); lat != 27 {
		t.Errorf("cold latency = %v, want 27", lat)
	}
	if lat := h.AccessNs(0, false); lat != 2 {
		t.Errorf("hot latency = %v, want 2", lat)
	}
	// Dirty eviction without L2 pays the writeback directly: line 0 is
	// dirty and LRU once 1024 fills the other way, so 2048 evicts it.
	h.AccessNs(0, true)
	h.AccessNs(1024, false)
	lat := h.AccessNs(2*1024, false) // evicts dirty line 0
	if lat != 2+10+25 {
		t.Errorf("dirty-eviction latency = %v, want 37", lat)
	}
}

func TestCachingHelps(t *testing.T) {
	// A small working set accessed repeatedly must be dominated by
	// cache hits; a huge random sweep must not.
	l1 := mustNew(t, cfg16K())
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 10000; i++ {
		l1.Access(int64(rng.Intn(8<<10)), false) // 8 KB set, fits
	}
	if hr := l1.Stats().HitRate(); hr < 0.9 {
		t.Errorf("resident working set hit rate %.2f too low", hr)
	}
	l2 := mustNew(t, cfg16K())
	for i := 0; i < 10000; i++ {
		l2.Access(int64(rng.Intn(64<<20)), false) // 64 MB sweep
	}
	if hr := l2.Stats().HitRate(); hr > 0.1 {
		t.Errorf("streaming sweep hit rate %.2f too high", hr)
	}
}

// Property: accesses = hits + misses, and repeating any address
// immediately is always a hit.
func TestCacheInvariantsProperty(t *testing.T) {
	f := func(addrs []int32) bool {
		c, err := New(cfg16K())
		if err != nil {
			return false
		}
		for _, a := range addrs {
			c.Access(int64(a), a%2 == 0)
			if o := c.Access(int64(a), false); !o.Hit {
				return false
			}
		}
		s := c.Stats()
		return s.Accesses == s.Hits+s.Misses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPrefetchNextLine(t *testing.T) {
	l1 := mustNew(t, Config{SizeBytes: 1 << 10, LineBytes: 32, Ways: 2, HitNs: 2})
	h := &Hierarchy{L1: l1, MemoryNs: 25, PrefetchNext: true}
	// Miss on line 0 prefetches line 1: the next sequential access hits.
	h.AccessNs(0, false)
	if lat := h.AccessNs(32, false); lat != 2 {
		t.Errorf("prefetched line must hit L1: latency %v", lat)
	}
	// A non-sequential access still misses.
	if lat := h.AccessNs(4096, false); lat != 27 {
		t.Errorf("random access latency %v, want 27", lat)
	}
}

func TestPrefetchCostsLatencyWhenNarrow(t *testing.T) {
	l1 := mustNew(t, Config{SizeBytes: 1 << 10, LineBytes: 32, Ways: 2, HitNs: 2})
	h := &Hierarchy{L1: l1, MemoryNs: 25, PrefetchNext: true, PrefetchNs: 10}
	if lat := h.AccessNs(0, false); lat != 2+25+10 {
		t.Errorf("narrow-bus prefetch must pay its cost: %v", lat)
	}
}

func TestPrefetchHelpsStreams(t *testing.T) {
	run := func(prefetch bool) float64 {
		l1 := mustNew(t, Config{SizeBytes: 1 << 10, LineBytes: 32, Ways: 2, HitNs: 2})
		h := &Hierarchy{L1: l1, MemoryNs: 25, PrefetchNext: prefetch}
		total := 0.0
		for a := int64(0); a < 64*1024; a += 32 {
			total += h.AccessNs(a, false)
		}
		return total
	}
	if p, n := run(true), run(false); p >= n {
		t.Errorf("free prefetch must speed streams: %v vs %v", p, n)
	}
}
