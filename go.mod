module edram

go 1.22
