package edram_test

import (
	"context"
	"strings"
	"testing"

	"edram"
)

// The facade test exercises the three public workflows end to end, the
// way a downstream user would.
func TestFacadeBuildAndViews(t *testing.T) {
	m, err := edram.BuildMacro(edram.MacroSpec{
		CapacityMbit:  16,
		InterfaceBits: 256,
		Redundancy:    edram.RedundancyStd,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.PeakBandwidthGBps() <= 0 {
		t.Fatal("macro has no bandwidth")
	}
	files, err := edram.Views(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 5 {
		t.Fatalf("views = %d", len(files))
	}
	foundHDL := false
	for _, f := range files {
		if strings.HasSuffix(f.Name, ".v") {
			foundHDL = true
		}
	}
	if !foundHDL {
		t.Error("HDL view missing")
	}
}

func TestFacadeExploreAndRecommend(t *testing.T) {
	req := edram.Requirements{
		CapacityMbit:  16,
		BandwidthGBps: 2,
		HitRate:       0.8,
		DefectsPerCm2: 0.8,
	}
	cands, err := edram.Explore(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) < 100 {
		t.Fatalf("candidates = %d", len(cands))
	}
	recs, err := edram.Recommend(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("no recommendations")
	}
}

func TestFacadeExploreContextStreams(t *testing.T) {
	req := edram.Requirements{
		CapacityMbit:  16,
		BandwidthGBps: 2,
		HitRate:       0.8,
		DefectsPerCm2: 0.8,
	}
	var final edram.ExploreStats
	observed := 0
	ch, err := edram.ExploreContext(context.Background(), req,
		edram.WithWorkers(2),
		edram.WithObserver(func(edram.Candidate) { observed++ }),
		edram.WithProgress(func(s edram.ExploreStats) {
			if s.Done {
				final = s
			}
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	streamed := 0
	for range ch {
		streamed++
	}
	if streamed < 100 {
		t.Fatalf("streamed only %d candidates", streamed)
	}
	if observed != streamed {
		t.Fatalf("observer saw %d, streamed %d", observed, streamed)
	}
	if !final.Done || final.Built != int64(streamed) {
		t.Fatalf("final stats %+v inconsistent with %d streamed candidates", final, streamed)
	}
	recs, err := edram.RecommendContext(context.Background(), req, edram.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("no recommendations from RecommendContext")
	}
}

func TestFacadeSimulate(t *testing.T) {
	m, err := edram.BuildMacro(edram.MacroSpec{CapacityMbit: 16, InterfaceBits: 64})
	if err != nil {
		t.Fatal(err)
	}
	res, err := edram.Simulate(m, edram.SimOptions{Policy: edram.OpenPageFirst}, []edram.Client{
		{Name: "stream", Gen: &edram.Sequential{Bits: 64, RateGB: 2, Count: 500}},
		{Name: "rt", LatencyBudgetNs: 500, Gen: &edram.Strided{
			StartB: 1 << 20, StrideB: 256, LimitB: 1 << 20, Bits: 64, RateGB: 0.5, Count: 250}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.SustainedGBps <= 0 || len(res.Clients) != 2 {
		t.Fatalf("broken simulation result: %+v", res)
	}
}

func TestFacadeExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment suite in -short mode")
	}
	exps, err := edram.Experiments()
	if err != nil {
		t.Fatal(err)
	}
	if len(exps) < 20 {
		t.Fatalf("experiments = %d", len(exps))
	}
}

func TestFacadeApplicationModels(t *testing.T) {
	b, err := edram.MPEG2BudgetFor(edram.MPEG2PAL())
	if err != nil {
		t.Fatal(err)
	}
	if b.TotalMbit < 15 || b.TotalMbit > 16 {
		t.Errorf("PAL budget %.2f Mbit", b.TotalMbit)
	}
	sb, err := edram.ScanBudgetFor(edram.ScanPAL50(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if sb.EDRAMMbit != 10 {
		t.Errorf("scan budget fit %d Mbit", sb.EDRAMMbit)
	}
}
