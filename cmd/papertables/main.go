// Command papertables regenerates every experiment of the reproduction
// (E1–E12, the paper's quantitative claims; see DESIGN.md §3) and prints
// the tables and headline findings. The experiments are independent, so
// they run on a worker pool (-workers) with per-experiment progress on
// stderr; output order stays canonical. EXPERIMENTS.md is written from
// this output.
//
// Usage:
//
//	papertables [-only E5] [-csv] [-workers 8]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"

	"edram/internal/experiments"
)

func main() {
	only := flag.String("only", "", "run a single experiment by id (e.g. E5)")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	md := flag.Bool("md", false, "emit markdown tables")
	list := flag.Bool("list", false, "list experiment ids and titles, then exit")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "experiment worker-pool size")
	quiet := flag.Bool("quiet", false, "suppress the progress line on stderr")
	flag.Parse()

	progress := func(done, total int, id string) {
		fmt.Fprintf(os.Stderr, "\rexperiments: %d/%d (%s done)", done, total, id)
		if done == total {
			fmt.Fprintln(os.Stderr)
		}
	}
	if *quiet {
		progress = nil
	}
	exps, err := experiments.AllContext(context.Background(), *workers, progress)
	if err != nil {
		fmt.Fprintln(os.Stderr, "papertables:", err)
		os.Exit(1)
	}
	if *list {
		for _, e := range exps {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}
	for _, e := range exps {
		if *only != "" && e.ID != *only {
			continue
		}
		fmt.Printf("%s — %s\n", e.ID, e.Title)
		var rerr error
		switch {
		case *csv:
			rerr = e.Table.RenderCSV(os.Stdout)
		case *md:
			rerr = e.Table.RenderMarkdown(os.Stdout)
		default:
			rerr = e.Table.Render(os.Stdout)
		}
		if rerr != nil {
			fmt.Fprintln(os.Stderr, "papertables:", rerr)
			os.Exit(1)
		}
		for _, f := range e.Findings {
			fmt.Printf("  finding: %-28s %10.3f %s\n", f.Name, f.Value, f.Unit)
		}
		fmt.Println()
	}
}
