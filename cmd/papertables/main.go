// Command papertables regenerates every experiment of the reproduction
// (E1–E12, the paper's quantitative claims; see DESIGN.md §3) and prints
// the tables and headline findings. EXPERIMENTS.md is written from this
// output.
//
// Usage:
//
//	papertables [-only E5] [-csv]
package main

import (
	"flag"
	"fmt"
	"os"

	"edram/internal/experiments"
)

func main() {
	only := flag.String("only", "", "run a single experiment by id (e.g. E5)")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	md := flag.Bool("md", false, "emit markdown tables")
	list := flag.Bool("list", false, "list experiment ids and titles, then exit")
	flag.Parse()

	exps, err := experiments.All()
	if err != nil {
		fmt.Fprintln(os.Stderr, "papertables:", err)
		os.Exit(1)
	}
	if *list {
		for _, e := range exps {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}
	for _, e := range exps {
		if *only != "" && e.ID != *only {
			continue
		}
		fmt.Printf("%s — %s\n", e.ID, e.Title)
		var rerr error
		switch {
		case *csv:
			rerr = e.Table.RenderCSV(os.Stdout)
		case *md:
			rerr = e.Table.RenderMarkdown(os.Stdout)
		default:
			rerr = e.Table.Render(os.Stdout)
		}
		if rerr != nil {
			fmt.Fprintln(os.Stderr, "papertables:", rerr)
			os.Exit(1)
		}
		for _, f := range e.Findings {
			fmt.Printf("  finding: %-28s %10.3f %s\n", f.Name, f.Value, f.Unit)
		}
		fmt.Println()
	}
}
