// In-process driver tests: run() is exercised directly (no TestMain,
// no exec of a built binary), so the smoke test also type-checks the
// whole module through the analysis loader.
package main

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

func moduleRoot(t *testing.T) string {
	t.Helper()
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("no caller info")
	}
	return filepath.Dir(filepath.Dir(filepath.Dir(file)))
}

func runVet(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, moduleRoot(t), &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

// TestSmokeWholeModule is the acceptance gate in test form: the full
// suite over ./... must be clean, and every suppression must carry a
// reason and still be earning its keep.
func TestSmokeWholeModule(t *testing.T) {
	code, stdout, stderr := runVet(t, "-audit-nolint", "./...")
	if code != 0 {
		t.Fatalf("edramvet -audit-nolint ./... = exit %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if stdout != "" {
		t.Errorf("clean run wrote findings:\n%s", stdout)
	}
}

func TestUsageErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"bad format", []string{"-format=xml", "./..."}},
		{"unknown analyzer", []string{"-only=bogus", "./..."}},
		{"audit with only", []string{"-audit-nolint", "-only=floateq", "./..."}},
		{"unknown flag", []string{"-frobnicate"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, stderr := runVet(t, tc.args...)
			if code != 2 {
				t.Errorf("exit %d, want 2 (stderr: %s)", code, stderr)
			}
		})
	}
}

func TestListAnalyzers(t *testing.T) {
	code, stdout, _ := runVet(t, "-list")
	if code != 0 {
		t.Fatalf("-list exit %d, want 0", code)
	}
	for _, a := range suite {
		if !strings.Contains(stdout, a.Name) {
			t.Errorf("-list output missing %s:\n%s", a.Name, stdout)
		}
	}
	if len(suite) != 9 {
		t.Errorf("suite has %d analyzers, want 9", len(suite))
	}
}

func TestJSONOutput(t *testing.T) {
	code, stdout, stderr := runVet(t, "-format=json", "internal/units")
	if code != 0 {
		t.Fatalf("exit %d, want 0 (stderr: %s)", code, stderr)
	}
	var findings []map[string]any
	if err := json.Unmarshal([]byte(stdout), &findings); err != nil {
		t.Fatalf("json output does not parse: %v\n%s", err, stdout)
	}
	if len(findings) != 0 {
		t.Errorf("clean package produced findings: %v", findings)
	}
}

func TestSARIFOutput(t *testing.T) {
	code, stdout, stderr := runVet(t, "-format=sarif", "internal/units")
	if code != 0 {
		t.Fatalf("exit %d, want 0 (stderr: %s)", code, stderr)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []any  `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []any `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(stdout), &log); err != nil {
		t.Fatalf("sarif output does not parse: %v\n%s", err, stdout)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("sarif version %q / %d runs, want 2.1.0 / 1", log.Version, len(log.Runs))
	}
	r := log.Runs[0]
	if r.Tool.Driver.Name != "edramvet" || len(r.Tool.Driver.Rules) != len(suite) {
		t.Errorf("driver %q with %d rules, want edramvet with %d", r.Tool.Driver.Name, len(r.Tool.Driver.Rules), len(suite))
	}
	if r.Results == nil {
		t.Error("results must be [] on a clean run, not null")
	}
}

// TestDiffMode: against the committed (empty) baseline, a clean tree
// stays clean; the baseline file itself must parse.
func TestDiffMode(t *testing.T) {
	code, _, stderr := runVet(t, "-diff", filepath.Join(moduleRoot(t), "lint_baseline.json"), "internal/units")
	if code != 0 {
		t.Fatalf("-diff exit %d, want 0 (stderr: %s)", code, stderr)
	}
}
