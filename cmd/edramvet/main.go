// Command edramvet runs the project's custom lint suite: nine
// go/analysis-style checkers enforcing the invariants the compiler
// cannot see (units naming discipline, model-package determinism,
// float-equality hygiene, deprecated-API migration, cache-key identity
// completeness, context propagation, goroutine cancellation-awareness,
// metric-label cardinality, and no-blocking-under-mutex). It is
// stdlib-only and offline: packages are loaded with go/parser +
// go/types, resolving module-internal imports from the module root and
// the standard library from GOROOT source.
//
// Usage:
//
//	edramvet [flags] [patterns...]
//
// Patterns are ./... (default, the whole module), dir/... for a
// subtree, or a package directory.
//
// Exit status:
//
//	0  no findings (with -audit-nolint: no bad directives either)
//	1  findings; in -diff mode, findings not in the baseline; in
//	   -audit-nolint mode, stale/reasonless/unknown-scope directives
//	2  usage errors, or packages that failed to load or type-check
//
// Intentional exceptions are annotated in the source:
//
//	//nolint:edramvet                 suppress all analyzers (line or next line)
//	//nolint:edramvet/floateq // why  suppress one analyzer, with a reason
//
// Reasonless or stale suppressions fail `edramvet -audit-nolint`.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"edram/internal/analysis"
	"edram/internal/analysis/cachekey"
	"edram/internal/analysis/ctxflow"
	"edram/internal/analysis/deprecated"
	"edram/internal/analysis/determinism"
	"edram/internal/analysis/floateq"
	"edram/internal/analysis/goroutines"
	"edram/internal/analysis/locks"
	"edram/internal/analysis/metricslabel"
	"edram/internal/analysis/unitscheck"
)

var suite = []*analysis.Analyzer{
	cachekey.Analyzer,
	ctxflow.Analyzer,
	deprecated.Analyzer,
	determinism.Analyzer,
	floateq.Analyzer,
	goroutines.Analyzer,
	locks.Analyzer,
	metricslabel.Analyzer,
	unitscheck.Analyzer,
}

func main() {
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "edramvet: %v\n", err)
		os.Exit(2)
	}
	os.Exit(run(os.Args[1:], cwd, os.Stdout, os.Stderr))
}

// run is the whole tool behind a testable seam: flag parsing, loading,
// analysis, output, and the exit code, with no global state.
func run(args []string, cwd string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("edramvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	tests := fs.Bool("tests", false, "also analyze in-package _test.go files")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := fs.Bool("list", false, "list analyzers and exit")
	format := fs.String("format", "text", "output format: text, json, or sarif")
	diffPath := fs.String("diff", "", "baseline `file`: fail only on findings not in the baseline")
	writeBaseline := fs.String("write-baseline", "", "write current findings to baseline `file` and exit 0")
	audit := fs.Bool("audit-nolint", false, "audit //nolint:edramvet directives (stale, reasonless, unknown scope); runs the full suite")
	fs.Usage = func() {
		fmt.Fprint(stderr, `edramvet: the project lint suite (stdlib-only, offline).

usage: edramvet [flags] [patterns...]

Patterns are ./... (default, the whole module), dir/... for a subtree,
or a package directory.

Exit status:
  0  no findings (with -audit-nolint: no bad directives either)
  1  findings; in -diff mode, findings not in the baseline; in
     -audit-nolint mode, stale/reasonless/unknown-scope directives
  2  usage errors, or packages that failed to load or type-check

Flags:
`)
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	errf := func(format string, args ...any) int {
		fmt.Fprintf(stderr, "edramvet: "+format+"\n", args...)
		return 2
	}

	switch *format {
	case "text", "json", "sarif":
	default:
		return errf("unknown -format %q (want text, json, or sarif)", *format)
	}

	if *list {
		for _, a := range suite {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers := suite
	if *only != "" {
		if *audit {
			return errf("-audit-nolint needs the full suite; drop -only (staleness is undecidable under a partial run)")
		}
		byName := map[string]*analysis.Analyzer{}
		for _, a := range suite {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				return errf("unknown analyzer %q (use -list)", name)
			}
			analyzers = append(analyzers, a)
		}
	}

	root := cwd
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return errf("no go.mod found above %s", cwd)
		}
		root = parent
	}

	loader, err := analysis.NewLoader(root)
	if err != nil {
		return errf("%v", err)
	}
	loader.IncludeTests = *tests

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var pkgs []*analysis.Package
	seen := map[string]bool{}
	for _, pat := range patterns {
		loaded, err := loadPattern(loader, cwd, pat)
		if err != nil {
			return errf("%s: %v", pat, err)
		}
		for _, p := range loaded {
			if !seen[p.Path] {
				seen[p.Path] = true
				pkgs = append(pkgs, p)
			}
		}
	}

	// The tree is expected to compile (tier-1 gate); type errors mean
	// the loader saw a different program than the compiler, so refuse
	// to lint quietly on top of them.
	badLoad := false
	for _, p := range pkgs {
		for _, e := range p.TypeErrors {
			fmt.Fprintf(stderr, "edramvet: %s: %v\n", p.Path, e)
			badLoad = true
		}
	}
	if badLoad {
		return 2
	}

	res, err := analysis.RunAnalyzersDetail(loader, pkgs, analyzers)
	if err != nil {
		return errf("%v", err)
	}

	if *writeBaseline != "" {
		b := analysis.NewBaseline(res.Findings, root)
		if err := b.WriteFile(*writeBaseline); err != nil {
			return errf("%v", err)
		}
		fmt.Fprintf(stderr, "edramvet: wrote %d baseline entr%s (%d finding(s)) to %s\n",
			len(b.Findings), plural(len(b.Findings), "y", "ies"), len(res.Findings), *writeBaseline)
		return 0
	}

	findings := res.Findings
	if *diffPath != "" {
		b, err := analysis.LoadBaseline(*diffPath)
		if err != nil {
			return errf("%v", err)
		}
		findings = b.Diff(findings, root)
	}

	switch *format {
	case "text":
		err = analysis.WriteText(stdout, findings, cwd)
	case "json":
		err = analysis.WriteJSON(stdout, findings, cwd)
	case "sarif":
		err = analysis.WriteSARIF(stdout, findings, analyzers, cwd)
	}
	if err != nil {
		return errf("%v", err)
	}

	status := 0
	if len(findings) > 0 {
		what := "finding(s)"
		if *diffPath != "" {
			what = "new finding(s) not in baseline " + *diffPath
		}
		fmt.Fprintf(stderr, "edramvet: %d %s\n", len(findings), what)
		status = 1
	}

	if *audit {
		bad := 0
		for _, e := range analysis.AuditNolint(res, analyzers) {
			if !e.Bad() {
				continue
			}
			bad++
			var why []string
			if e.Stale {
				why = append(why, "stale: suppressed nothing this run")
			}
			if e.MissingReason {
				why = append(why, "missing a reason")
			}
			for _, n := range e.Unknown {
				why = append(why, fmt.Sprintf("unknown analyzer %q", n))
			}
			file := e.File
			if rel, err := filepath.Rel(cwd, file); err == nil && !strings.HasPrefix(rel, "..") {
				file = rel
			}
			fmt.Fprintf(stdout, "%s:%d: nolint:edramvet/%s — %s\n", file, e.Line, e.Scope(), strings.Join(why, "; "))
		}
		if bad > 0 {
			fmt.Fprintf(stderr, "edramvet: %d bad nolint directive(s)\n", bad)
			status = 1
		} else {
			fmt.Fprintf(stderr, "edramvet: %d nolint directive(s), all scoped, reasoned, and earning their keep\n", len(res.Directives))
		}
	}
	return status
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}

// loadPattern resolves one command-line pattern to packages.
func loadPattern(loader *analysis.Loader, cwd, pat string) ([]*analysis.Package, error) {
	switch {
	case pat == "./..." || pat == "...":
		return loader.LoadAll()
	case strings.HasSuffix(pat, "/..."):
		dir := filepath.Join(cwd, strings.TrimSuffix(pat, "/..."))
		return loader.LoadTree(dir)
	default:
		dir := pat
		if !filepath.IsAbs(dir) {
			dir = filepath.Join(cwd, pat)
		}
		rel, err := filepath.Rel(loader.ModuleRoot, dir)
		if err != nil || strings.HasPrefix(rel, "..") {
			return nil, fmt.Errorf("outside module root")
		}
		path := loader.ModulePath
		if rel != "." {
			path = loader.ModulePath + "/" + filepath.ToSlash(rel)
		}
		p, err := loader.Import(path)
		if err != nil {
			return nil, err
		}
		for _, lp := range loader.Packages() {
			if lp.Types == p {
				return []*analysis.Package{lp}, nil
			}
		}
		return nil, fmt.Errorf("package %s not loaded", path)
	}
}
