// Command edramvet runs the project's custom lint suite: four
// go/analysis-style checkers enforcing the invariants the compiler
// cannot see (internal/units naming discipline, model-package
// determinism, float-equality hygiene, and deprecated-API migration).
// It is stdlib-only and offline: packages are loaded with go/parser +
// go/types, resolving module-internal imports from the module root and
// the standard library from GOROOT source.
//
// Usage:
//
//	edramvet [-tests] [-only name[,name]] [patterns...]
//
// Patterns are ./... (default, the whole module), dir/... for a
// subtree, or a package directory. Exit status: 0 clean, 1 findings,
// 2 usage or load errors.
//
// Intentional exceptions are annotated in the source:
//
//	//nolint:edramvet                 suppress all analyzers (line or next line)
//	//nolint:edramvet/floateq // why  suppress one analyzer, with a reason
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"edram/internal/analysis"
	"edram/internal/analysis/deprecated"
	"edram/internal/analysis/determinism"
	"edram/internal/analysis/floateq"
	"edram/internal/analysis/unitscheck"
)

var suite = []*analysis.Analyzer{
	determinism.Analyzer,
	deprecated.Analyzer,
	floateq.Analyzer,
	unitscheck.Analyzer,
}

func main() {
	tests := flag.Bool("tests", false, "also analyze in-package _test.go files")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range suite {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := suite
	if *only != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range suite {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fail("unknown analyzer %q (use -list)", name)
			}
			analyzers = append(analyzers, a)
		}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fail("%v", err)
	}
	root := cwd
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			fail("no go.mod found above %s", cwd)
		}
		root = parent
	}

	loader, err := analysis.NewLoader(root)
	if err != nil {
		fail("%v", err)
	}
	loader.IncludeTests = *tests

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var pkgs []*analysis.Package
	seen := map[string]bool{}
	for _, pat := range patterns {
		loaded, err := loadPattern(loader, cwd, pat)
		if err != nil {
			fail("%s: %v", pat, err)
		}
		for _, p := range loaded {
			if !seen[p.Path] {
				seen[p.Path] = true
				pkgs = append(pkgs, p)
			}
		}
	}

	// The tree is expected to compile (tier-1 gate); type errors mean
	// the loader saw a different program than the compiler, so refuse
	// to lint quietly on top of them.
	badLoad := false
	for _, p := range pkgs {
		for _, e := range p.TypeErrors {
			fmt.Fprintf(os.Stderr, "edramvet: %s: %v\n", p.Path, e)
			badLoad = true
		}
	}
	if badLoad {
		os.Exit(2)
	}

	findings, err := analysis.RunAnalyzers(loader, pkgs, analyzers)
	if err != nil {
		fail("%v", err)
	}
	for _, f := range findings {
		fmt.Println(relativize(cwd, f))
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "edramvet: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// loadPattern resolves one command-line pattern to packages.
func loadPattern(loader *analysis.Loader, cwd, pat string) ([]*analysis.Package, error) {
	switch {
	case pat == "./..." || pat == "...":
		return loader.LoadAll()
	case strings.HasSuffix(pat, "/..."):
		dir := filepath.Join(cwd, strings.TrimSuffix(pat, "/..."))
		return loader.LoadTree(dir)
	default:
		dir := pat
		if !filepath.IsAbs(dir) {
			dir = filepath.Join(cwd, pat)
		}
		rel, err := filepath.Rel(loader.ModuleRoot, dir)
		if err != nil || strings.HasPrefix(rel, "..") {
			return nil, fmt.Errorf("outside module root")
		}
		path := loader.ModulePath
		if rel != "." {
			path = loader.ModulePath + "/" + filepath.ToSlash(rel)
		}
		p, err := loader.Import(path)
		if err != nil {
			return nil, err
		}
		for _, lp := range loader.Packages() {
			if lp.Types == p {
				return []*analysis.Package{lp}, nil
			}
		}
		return nil, fmt.Errorf("package %s not loaded", path)
	}
}

// relativize shortens finding paths for readability.
func relativize(cwd string, f analysis.Finding) string {
	if rel, err := filepath.Rel(cwd, f.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
		f.Pos.Filename = rel
	}
	return f.String()
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "edramvet: "+format+"\n", args...)
	os.Exit(2)
}
