// Command mpeg2mem runs the paper §4.1 MPEG2 decoder memory case study:
// budget and bandwidth for PAL/NTSC in both output-buffer modes, the
// commodity-vs-eDRAM fit, and a simulated one-frame decode on an
// embedded macro.
//
// Usage:
//
//	mpeg2mem [-format PAL] [-mode full] [-frames 2]
package main

import (
	"flag"
	"fmt"
	"os"

	"edram/internal/edram"
	"edram/internal/mapping"
	"edram/internal/mpeg2"
	"edram/internal/report"
	"edram/internal/sched"
)

func main() {
	formatName := flag.String("format", "PAL", "video format: PAL or NTSC")
	modeName := flag.String("mode", "full", "output buffer mode: full or reduced")
	frames := flag.Int("frames", 1, "frames of traffic to simulate")
	iface := flag.Int("iface", 64, "macro interface width in bits")
	flag.Parse()

	var f mpeg2.Format
	switch *formatName {
	case "PAL":
		f = mpeg2.PAL()
	case "NTSC":
		f = mpeg2.NTSC()
	default:
		fail(fmt.Errorf("unknown format %q", *formatName))
	}
	mode := mpeg2.FullOutput
	if *modeName == "reduced" {
		mode = mpeg2.ReducedOutput
	} else if *modeName != "full" {
		fail(fmt.Errorf("unknown mode %q", *modeName))
	}

	b, err := mpeg2.BudgetFor(f, mode)
	if err != nil {
		fail(err)
	}
	bw, err := mpeg2.Bandwidth(f, mode)
	if err != nil {
		fail(err)
	}

	t := report.New(fmt.Sprintf("%s decoder, %s", f.Name, mode), "buffer", "Mbit")
	t.AddRow("input (VBV)", b.InputMbit)
	t.AddRow("reference frames", b.RefMbit)
	t.AddRow("output", b.OutputMbit)
	t.AddRow("total", b.TotalMbit)
	if err := t.Render(os.Stdout); err != nil {
		fail(err)
	}
	fmt.Printf("\ncommodity fit: %d Mbit   eDRAM fit: %d Mbit\n",
		mpeg2.CommodityFitMbit(b), mpeg2.EDRAMFitMbit(b))
	saving, err := mpeg2.SavingMbit(f)
	if err != nil {
		fail(err)
	}
	fmt.Printf("reduced-output saving: %.2f Mbit (costs 2x pipeline + MC bandwidth)\n\n", saving)

	bt := report.New("bandwidth requirement", "path", "GB/s")
	bt.AddRow("input", bw.InputGBps)
	bt.AddRow("motion compensation", bw.MCGBps)
	bt.AddRow("reconstruction", bw.ReconGBps)
	bt.AddRow("display", bw.DisplayGBps)
	bt.AddRow("total", bw.TotalGBps)
	if err := bt.Render(os.Stdout); err != nil {
		fail(err)
	}

	// Simulate the decode on the exact-fit macro.
	capMbit := mpeg2.EDRAMFitMbit(b)
	m, err := edram.Build(edram.Spec{CapacityMbit: capMbit, InterfaceBits: *iface})
	if err != nil {
		fail(err)
	}
	cfg := m.DeviceConfig()
	gm := mapping.Geometry{Banks: cfg.Banks, RowsBank: cfg.RowsPerBank, PageBytes: cfg.PageBits / 8}
	mp, err := mapping.NewBankInterleaved(gm)
	if err != nil {
		fail(err)
	}
	clients, err := mpeg2.Clients(f, mode, *frames, 7)
	if err != nil {
		fail(err)
	}
	res, err := sched.RunWithOptions(cfg, mp, sched.Options{Policy: sched.OpenPageFirst}, clients)
	if err != nil {
		fail(err)
	}
	budgetMs := float64(*frames) * 1e3 / float64(f.FPS)
	fmt.Printf("\nsimulated %d frame(s) on a %d-Mbit/%d-bit macro: %.2f ms (budget %.1f ms), "+
		"%.0f%% of macro peak used\n",
		*frames, capMbit, *iface, res.DurationNs/1e6, budgetMs, 100*res.SustainedFraction)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "mpeg2mem:", err)
	os.Exit(1)
}
