// Command edramload is the SLO harness for edramd: a closed- or
// open-loop load generator that replays a seeded, deterministic
// request schedule (internal/loadgen) against a daemon and judges the
// run against declared latency/error objectives.
//
// Usage:
//
//	edramload [-addr http://host:8080] [-seed 1] [-requests N]
//	          [-concurrency 8] [-rate R] [-json]
//	          [-slo-p50-ms 250] [-slo-p99-ms 5000] [-slo-p999-ms 10000]
//	          [-slo-max-error-frac 0]
//
// With no -addr, edramload self-hosts an in-process edramd configured
// with a deliberately tiny /v1/simulate concurrency budget (so the
// schedule's overload mix actually sheds), local sharding enabled (so
// the sharded mix sweeps the partitioned explore path) and a disk
// cache tier pre-warmed with one of the sharded mix's bodies (so the
// run deterministically serves at least one disk hit) — this is the
// deterministic profile `make load-smoke` and CI run. The exit status
// is the verdict: 0 when every SLO held and no unexpected errors
// occurred, 1 on any breach.
//
// The schedule is pure and replayable (same seed, same byte-exact
// request sequence); only the measured latencies vary run to run.
// Deliberate behaviours are excluded from the error budget: 503s on
// overload probes and the harness's own mid-flight disconnects.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"edram/internal/core"
	"edram/internal/loadgen"
	"edram/internal/service"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "edramload: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	addr := flag.String("addr", "", "target edramd base URL (empty = self-host an in-process server)")
	requests := flag.Int("requests", 0, "schedule length (0 = the smoke profile's default)")
	concurrency := flag.Int("concurrency", 8, "closed-loop worker count")
	rate := flag.Float64("rate", 0, "open-loop arrival rate in requests/second (0 = closed loop)")
	seed := flag.Int64("seed", 1, "schedule seed (same seed = same request sequence)")
	jsonOut := flag.Bool("json", false, "emit the report as JSON instead of the table")
	p50 := flag.Float64("slo-p50-ms", 0, "p50 latency objective in ms (0 = profile default)")
	p99 := flag.Float64("slo-p99-ms", 0, "p99 latency objective in ms (0 = profile default)")
	p999 := flag.Float64("slo-p999-ms", 0, "p999 latency objective in ms (0 = profile default)")
	maxErr := flag.Float64("slo-max-error-frac", 0, "tolerated fraction of unexpected errors")
	flag.Parse()

	profile := loadgen.SmokeProfile(*seed)
	if *requests > 0 {
		profile.Requests = *requests
	}
	schedule, err := loadgen.Schedule(profile)
	if err != nil {
		fail("%v", err)
	}
	slo := loadgen.DefaultSLO()
	if *p50 > 0 {
		slo.P50Ms = *p50
	}
	if *p99 > 0 {
		slo.P99Ms = *p99
	}
	if *p999 > 0 {
		slo.P999Ms = *p999
	}
	slo.MaxErrorFrac = *maxErr

	base := *addr
	var shutdown func() error
	if base == "" {
		base, shutdown, err = selfHost()
		if err != nil {
			fail("self-host: %v", err)
		}
	}

	outcomes := run(base, schedule, *concurrency, *rate)
	tiers := scrapeTiers(base)
	if shutdown != nil {
		if err := shutdown(); err != nil {
			fail("shutdown: %v", err)
		}
	}

	report := loadgen.Summarize(outcomes)
	report.Tiers = tiers
	if *jsonOut {
		b, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fail("%v", err)
		}
		fmt.Println(string(b))
	} else {
		fmt.Print(report.Format())
	}
	if violations := report.Check(slo); len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintf(os.Stderr, "edramload: SLO violation: %s\n", v)
		}
		os.Exit(1)
	}
	fmt.Println("edramload: SLOs met")
}

// selfHost starts an in-process edramd on a loopback port, configured
// so every mix has something real to probe: one concurrent
// /v1/simulate at a time (the overload mix's shed target, everything
// else generously budgeted — the global queue bound is disabled so
// only the deliberate target sheds), two local shard partitions per
// explore, a disk cache tier over a temp directory that prewarm has
// already populated — the main run's first draw of that body is a
// warm-start disk hit, never a recomputation — and a warmed-up delta
// state for the delta mix's requirement family, so its constraint
// tweaks are served as hit-delta.
func selfHost() (base string, shutdown func() error, err error) {
	dir, err := os.MkdirTemp("", "edramload-cache-")
	if err != nil {
		return "", nil, err
	}
	cleanup := func() { os.RemoveAll(dir) }
	if err := prewarm(dir); err != nil {
		cleanup()
		return "", nil, fmt.Errorf("prewarm: %v", err)
	}
	srv := service.NewServer(service.Config{
		AccessLog:      io.Discard,
		MaxQueueDepth:  -1,
		EndpointBudget: map[string]int{"/v1/simulate": 1},
		ShardParts:     2,
		CacheDir:       dir,
	})
	if err := srv.DiskCacheErr(); err != nil {
		cleanup()
		return "", nil, fmt.Errorf("disk cache: %v", err)
	}
	// Warm the delta mix's structural family (hit_rate 0.6, no
	// constraint caps) so its rotating area-cap bodies are re-served
	// incrementally from the retained sweep — the run deterministically
	// exercises the hit-delta tier even though sharding is enabled
	// (sharded sweeps never record delta states; Warmup does).
	if err := srv.Warmup(context.Background(), []core.Requirements{
		{CapacityMbit: 16, BandwidthGBps: 1.0, HitRate: 0.6},
	}); err != nil {
		cleanup()
		return "", nil, fmt.Errorf("warmup: %v", err)
	}
	srv.MarkReady()
	ctx, cancel := context.WithCancel(context.Background())
	addrCh := make(chan net.Addr, 1)
	errCh := make(chan error, 1)
	go func() {
		errCh <- srv.ListenAndServe(ctx, "127.0.0.1:0", func(a net.Addr) { addrCh <- a })
	}()
	select {
	case a := <-addrCh:
		return "http://" + a.String(), func() error {
			cancel()
			err := <-errCh
			cleanup()
			return err
		}, nil
	case err := <-errCh:
		cancel()
		cleanup()
		return "", nil, fmt.Errorf("server did not start: %v", err)
	}
}

// prewarmBody is one of the sharded mix's rotating explore bodies
// (loadgen cycles max_power_mw over 400.5..700.5; the first draw is
// 500.5). Computing it into the cache directory ahead of the run
// makes the main server's first sharded draw a deterministic
// disk-tier hit.
const prewarmBody = `{"capacity_mbit":16,"bandwidth_gbps":1.0,"hit_rate":0.5,"max_power_mw":500.5}`

// prewarm computes prewarmBody into dir's disk cache via a throwaway
// server life, then drains it so the snapshot is durable before the
// measured server opens the same directory.
func prewarm(dir string) error {
	srv := service.NewServer(service.Config{AccessLog: io.Discard, CacheDir: dir})
	if err := srv.DiskCacheErr(); err != nil {
		return err
	}
	srv.MarkReady()
	ctx, cancel := context.WithCancel(context.Background())
	addrCh := make(chan net.Addr, 1)
	errCh := make(chan error, 1)
	go func() {
		errCh <- srv.ListenAndServe(ctx, "127.0.0.1:0", func(a net.Addr) { addrCh <- a })
	}()
	var base string
	select {
	case a := <-addrCh:
		base = "http://" + a.String()
	case err := <-errCh:
		cancel()
		return fmt.Errorf("prewarm server did not start: %v", err)
	}
	client := &http.Client{Timeout: 2 * time.Minute}
	resp, err := client.Post(base+"/v1/explore", "application/json", strings.NewReader(prewarmBody))
	if err != nil {
		cancel()
		<-errCh
		return err
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	cancel()
	if err := <-errCh; err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("prewarm explore: status %d", resp.StatusCode)
	}
	return nil
}

// scrapeTiers reads the daemon's /metrics after the run and extracts
// the per-tier cache hit/miss counters for the report. Best-effort: a
// daemon without metrics simply yields no tier lines.
func scrapeTiers(base string) []loadgen.TierStat {
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil || resp.StatusCode != http.StatusOK {
		return nil
	}
	return loadgen.ParseTierStats(string(b))
}

// run replays the schedule. Closed loop: `concurrency` workers each
// issue the next request as soon as their previous one finishes —
// throughput adapts to the server. Open loop: requests launch on a
// fixed arrival clock regardless of completions — latency under a
// non-adaptive arrival process, the regime where queues actually grow.
func run(base string, schedule []loadgen.Request, concurrency int, rate float64) []loadgen.Outcome {
	client := &http.Client{Timeout: 2 * time.Minute}
	outcomes := make([]loadgen.Outcome, len(schedule))
	var wg sync.WaitGroup
	if rate > 0 {
		interval := time.Duration(float64(time.Second) / rate)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for i := range schedule {
			<-ticker.C
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				outcomes[i] = issue(client, base, schedule[i])
			}(i)
		}
	} else {
		if concurrency < 1 {
			concurrency = 1
		}
		var next atomic.Int64
		for w := 0; w < concurrency; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(schedule) {
						return
					}
					outcomes[i] = issue(client, base, schedule[i])
				}
			}()
		}
	}
	wg.Wait()
	return outcomes
}

// issue performs one scheduled request and classifies the outcome.
func issue(client *http.Client, base string, r loadgen.Request) loadgen.Outcome {
	out := loadgen.Outcome{Mix: r.Mix, WantShed: r.WantShed}

	var body io.Reader = strings.NewReader(r.Body)
	if r.SlowBody {
		body = &dripReader{s: r.Body, chunk: 8, pause: 5 * time.Millisecond}
	}
	ctx := context.Background()
	if r.Disconnect {
		// Abandon the request mid-flight: the context dies a moment
		// after the request is on the wire. The server's detached
		// compute must finish and fill its cache regardless.
		dctx, cancel := context.WithCancel(ctx)
		time.AfterFunc(2*time.Millisecond, cancel)
		defer cancel()
		ctx = dctx
		out.Disconnected = true
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+r.Path, body)
	if err != nil {
		return out
	}
	req.Header.Set("Content-Type", "application/json")

	//nolint:edramvet/determinism // latency measurement is the harness's entire job
	start := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		// A transport error on a deliberate disconnect is the intended
		// outcome; anywhere else it is an unexpected error (Status 0).
		return out
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	out.LatencyNs = time.Since(start).Nanoseconds()
	out.Status = resp.StatusCode
	return out
}

// dripReader feeds the request body a few bytes at a time with pauses
// between chunks — the slow-client mix.
type dripReader struct {
	s     string
	pos   int
	chunk int
	pause time.Duration
}

func (d *dripReader) Read(p []byte) (int, error) {
	if d.pos >= len(d.s) {
		return 0, io.EOF
	}
	if d.pos > 0 {
		time.Sleep(d.pause)
	}
	n := copy(p, d.s[d.pos:min(d.pos+d.chunk, len(d.s))])
	d.pos += n
	return n, nil
}
