package main

import (
	"strings"
	"testing"
)

const sampleBench = `
goos: linux
goarch: amd64
pkg: edram/internal/core
BenchmarkDesignSpaceExplore-4   	      55	   3775451 ns/op	 3546800 B/op	    7557 allocs/op
BenchmarkExploreParallel/workers=1-4 	      80	   3263402 ns/op	    659439 points/sec	 1867885 B/op	    7538 allocs/op
BenchmarkE8Sustained-4          	      42	   5868651 ns/op	         1.608 recovery	 5408233 B/op	   40535 allocs/op
BenchmarkDeviceAccess           	 4020980	        60.49 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	edram/internal/core	5.1s
`

func TestParse(t *testing.T) {
	snap, err := Parse(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Benchmarks) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4", len(snap.Benchmarks))
	}
	if snap.GOMAXPROCS != 4 {
		t.Fatalf("GOMAXPROCS not recorded from the -4 suffix: %d", snap.GOMAXPROCS)
	}
	explore, ok := snap.Benchmarks["BenchmarkDesignSpaceExplore"]
	if !ok {
		t.Fatal("GOMAXPROCS suffix not stripped from BenchmarkDesignSpaceExplore-4")
	}
	if explore.NsPerOp != 3775451 || explore.AllocsPerOp != 7557 || explore.BytesPerOp != 3546800 { //nolint:edramvet/floateq // exact parse of literal input
		t.Fatalf("wrong values: %+v", explore)
	}
	par, ok := snap.Benchmarks["BenchmarkExploreParallel/workers=1"]
	if !ok {
		t.Fatal("sub-benchmark name mangled; want suffix stripped but workers=1 kept")
	}
	if par.Extra["points/sec"] != 659439 { //nolint:edramvet/floateq // exact parse of literal input
		t.Fatalf("custom metric lost: %+v", par)
	}
	if snap.Benchmarks["BenchmarkE8Sustained"].Extra["recovery"] != 1.608 { //nolint:edramvet/floateq // exact parse of literal input
		t.Fatal("ReportMetric value lost")
	}
	if dev := snap.Benchmarks["BenchmarkDeviceAccess"]; dev.NsPerOp != 60.49 || dev.AllocsPerOp != 0 { //nolint:edramvet/floateq // exact parse of literal input
		t.Fatalf("unsuffixed benchmark mis-parsed: %+v", dev)
	}
}

func TestStripProcSuffix(t *testing.T) {
	cases := map[string]string{
		"BenchmarkFoo-4":                     "BenchmarkFoo",
		"BenchmarkFoo-16":                    "BenchmarkFoo",
		"BenchmarkFoo":                       "BenchmarkFoo",
		"BenchmarkExploreParallel/workers=4": "BenchmarkExploreParallel/workers=4",
		"BenchmarkFoo-":                      "BenchmarkFoo-",
		"BenchmarkFoo-bar":                   "BenchmarkFoo-bar",
	}
	for in, want := range cases {
		if got := stripProcSuffix(in); got != want {
			t.Errorf("stripProcSuffix(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestCompareTolerances(t *testing.T) {
	old := &Snapshot{Benchmarks: map[string]Result{
		"BenchmarkA":    {NsPerOp: 1000, AllocsPerOp: 100, BytesPerOp: 4096},
		"BenchmarkGone": {NsPerOp: 50},
	}}
	within := &Snapshot{Benchmarks: map[string]Result{
		"BenchmarkA":   {NsPerOp: 1200, AllocsPerOp: 100, BytesPerOp: 4096},
		"BenchmarkNew": {NsPerOp: 9999, AllocsPerOp: 1e6},
	}}
	if regs := Compare(old, within, 0.30, 0.0); len(regs) != 0 {
		t.Fatalf("within-tolerance compare flagged %v", regs)
	}
	slow := &Snapshot{Benchmarks: map[string]Result{
		"BenchmarkA": {NsPerOp: 1400, AllocsPerOp: 100, BytesPerOp: 4096},
	}}
	if regs := Compare(old, slow, 0.30, 0.0); len(regs) != 1 || regs[0].metric != "ns/op" {
		t.Fatalf("ns/op regression not flagged: %v", regs)
	}
	leaky := &Snapshot{Benchmarks: map[string]Result{
		"BenchmarkA": {NsPerOp: 1000, AllocsPerOp: 101, BytesPerOp: 4096},
	}}
	if regs := Compare(old, leaky, 0.30, 0.0); len(regs) != 1 || regs[0].metric != "allocs/op" {
		t.Fatalf("allocs/op regression not flagged at zero tolerance: %v", regs)
	}
	if regs := Compare(old, leaky, 0.30, 0.05); len(regs) != 0 {
		t.Fatalf("alloc tolerance not applied: %v", regs)
	}
}

// TestCheckComparable: same-parallelism snapshots compare, unknown
// provenance warns through, cross-host pairs are refused.
func TestCheckComparable(t *testing.T) {
	if err := checkComparable(&Snapshot{GOMAXPROCS: 4}, &Snapshot{GOMAXPROCS: 4}); err != nil {
		t.Errorf("same-host compare refused: %v", err)
	}
	if err := checkComparable(&Snapshot{}, &Snapshot{GOMAXPROCS: 4}); err != nil {
		t.Errorf("unknown-provenance compare refused: %v", err)
	}
	if err := checkComparable(&Snapshot{GOMAXPROCS: 1}, &Snapshot{GOMAXPROCS: 8}); err == nil {
		t.Error("cross-host compare accepted")
	}
	// An unsuffixed single-core run parses to GOMAXPROCS 1, so it must
	// refuse against a multi-core baseline.
	snap, err := Parse(strings.NewReader("BenchmarkSolo \t 10 \t 100 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if snap.GOMAXPROCS != 1 {
		t.Fatalf("unsuffixed run GOMAXPROCS = %d, want 1", snap.GOMAXPROCS)
	}
	if err := checkComparable(&Snapshot{GOMAXPROCS: 8}, snap); err == nil {
		t.Error("1-core vs 8-core compare accepted")
	}
}
