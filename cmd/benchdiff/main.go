// Command benchdiff turns `go test -bench -benchmem` text into a
// stable JSON snapshot and compares two snapshots under separate time
// and allocation tolerances — the repo's benchmark-trajectory harness.
//
// Snapshot mode (default) parses benchmark output from stdin or a file:
//
//	go test -bench . -benchmem ./... | benchdiff -o BENCH_5.json
//
// Compare mode gates a new snapshot against a previous one:
//
//	benchdiff -compare -time-tol 0.35 -alloc-tol 0.10 BENCH_4.json BENCH_5.json
//
// Time tolerance is the allowed fractional ns/op growth; alloc
// tolerance bounds allocs/op and B/op growth the same way. Allocation
// counts are deterministic even at -benchtime=1x, so CI gates them
// tightly while leaving ns/op slack for noisy runners (see the
// bench-smoke job). A benchmark present in only one snapshot is
// reported but never fails the gate, so adding or retiring benchmarks
// does not need a snapshot flag day.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's measured values. Extra holds non-standard
// per-op metrics emitted via testing.B.ReportMetric (e.g. the E8
// bench's recovery factor), keyed by unit.
type Result struct {
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// Snapshot is the on-disk BENCH_<n>.json schema: benchmark name (with
// the -GOMAXPROCS suffix stripped, so keys stay machine-independent)
// to result. GOMAXPROCS records the parallelism of the run the numbers
// came from — taken from the stripped suffix (1 when go test emitted
// none) — and compare mode refuses to gate two snapshots whose values
// differ: a ns/op delta between a 1-core and an 8-core run is a
// machine change, not a regression. 0 means a pre-field snapshot of
// unknown provenance; those compare with a warning.
type Snapshot struct {
	SchemaVersion int               `json:"schema_version"`
	GOMAXPROCS    int               `json:"gomaxprocs,omitempty"`
	Benchmarks    map[string]Result `json:"benchmarks"`
}

func main() {
	var (
		compare  = flag.Bool("compare", false, "compare two snapshot files (old new) instead of parsing bench output")
		out      = flag.String("o", "", "snapshot mode: write JSON here (default stdout)")
		timeTol  = flag.Float64("time-tol", 0.30, "compare mode: allowed fractional ns/op growth")
		allocTol = flag.Float64("alloc-tol", 0.0, "compare mode: allowed fractional allocs/op and B/op growth")
	)
	flag.Parse()

	var err error
	if *compare {
		err = runCompare(flag.Args(), *timeTol, *allocTol)
	} else {
		err = runSnapshot(flag.Args(), *out)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}

func runSnapshot(args []string, out string) error {
	var in io.Reader = os.Stdin
	switch len(args) {
	case 0:
	case 1:
		f, err := os.Open(args[0])
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	default:
		return fmt.Errorf("snapshot mode takes at most one input file, got %d args", len(args))
	}
	snap, err := Parse(in)
	if err != nil {
		return err
	}
	if len(snap.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines found in input")
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(out, data, 0o644)
}

// Parse reads `go test -bench` output into a snapshot. Lines that are
// not benchmark results (headers, PASS/ok, failures) are skipped.
func Parse(r io.Reader) (*Snapshot, error) {
	snap := &Snapshot{SchemaVersion: 1, Benchmarks: map[string]Result{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			continue
		}
		name := stripProcSuffix(fields[0])
		if name != fields[0] {
			if p, err := strconv.Atoi(fields[0][len(name)+1:]); err == nil {
				snap.GOMAXPROCS = p
			}
		} else if snap.GOMAXPROCS == 0 {
			// go test omits the suffix entirely when GOMAXPROCS is 1.
			snap.GOMAXPROCS = 1
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // e.g. "BenchmarkFoo---FAIL"
		}
		res := Result{Iterations: iters}
		// The remainder is value/unit pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchmark %s: bad value %q", name, fields[i])
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				res.NsPerOp = v
			case "B/op":
				res.BytesPerOp = v
			case "allocs/op":
				res.AllocsPerOp = v
			default:
				if res.Extra == nil {
					res.Extra = map[string]float64{}
				}
				res.Extra[unit] = v
			}
		}
		snap.Benchmarks[name] = res
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return snap, nil
}

// stripProcSuffix removes the trailing "-<GOMAXPROCS>" go test appends
// to benchmark names, keeping snapshot keys machine-independent.
// Sub-benchmark names containing digits (workers=4) are unaffected:
// only a pure-digit run after the final '-' is stripped.
func stripProcSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i <= 0 || i == len(name)-1 {
		return name
	}
	for _, c := range name[i+1:] {
		if c < '0' || c > '9' {
			return name
		}
	}
	return name[:i]
}

func loadSnapshot(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if snap.Benchmarks == nil {
		return nil, fmt.Errorf("%s: no benchmarks key", path)
	}
	return &snap, nil
}

// regression describes one gated metric exceeding its tolerance.
type regression struct {
	name, metric    string
	oldV, newV, tol float64
}

func runCompare(args []string, timeTol, allocTol float64) error {
	if len(args) != 2 {
		return fmt.Errorf("compare mode needs exactly two snapshots: old new")
	}
	oldSnap, err := loadSnapshot(args[0])
	if err != nil {
		return err
	}
	newSnap, err := loadSnapshot(args[1])
	if err != nil {
		return err
	}
	if err := checkComparable(oldSnap, newSnap); err != nil {
		return err
	}
	regs := Compare(oldSnap, newSnap, timeTol, allocTol)

	names := make([]string, 0, len(newSnap.Benchmarks))
	for name := range newSnap.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	w := bufio.NewWriter(os.Stdout)
	fmt.Fprintf(w, "%-52s %14s %14s %10s\n", "benchmark", "old ns/op", "new ns/op", "Δallocs")
	for _, name := range names {
		nw := newSnap.Benchmarks[name]
		ov, ok := oldSnap.Benchmarks[name]
		if !ok {
			fmt.Fprintf(w, "%-52s %14s %14.0f %10s\n", name, "(new)", nw.NsPerOp, "-")
			continue
		}
		fmt.Fprintf(w, "%-52s %14.0f %14.0f %+10.0f\n", name, ov.NsPerOp, nw.NsPerOp, nw.AllocsPerOp-ov.AllocsPerOp)
	}
	for name := range oldSnap.Benchmarks {
		if _, ok := newSnap.Benchmarks[name]; !ok {
			fmt.Fprintf(w, "%-52s %14s\n", name, "(retired)")
		}
	}
	w.Flush()

	if len(regs) == 0 {
		fmt.Printf("benchdiff: OK — no regressions beyond tolerances (time %+.0f%%, alloc %+.0f%%)\n",
			timeTol*100, allocTol*100)
		return nil
	}
	for _, r := range regs {
		fmt.Fprintf(os.Stderr, "benchdiff: REGRESSION %s %s: %.0f -> %.0f (+%.1f%%, tolerance %.0f%%)\n",
			r.name, r.metric, r.oldV, r.newV, (r.newV/r.oldV-1)*100, r.tol*100)
	}
	return fmt.Errorf("%d regression(s)", len(regs))
}

// checkComparable refuses a compare across runs of different
// parallelism: those ns/op deltas measure the machine, not the code.
// A snapshot predating the gomaxprocs field (0) compares with a
// warning — the provenance is unknown, not known-mismatched.
func checkComparable(oldSnap, newSnap *Snapshot) error {
	switch {
	case oldSnap.GOMAXPROCS == 0 || newSnap.GOMAXPROCS == 0:
		fmt.Fprintln(os.Stderr, "benchdiff: warning: snapshot without gomaxprocs provenance — cross-host drift not checked")
	case oldSnap.GOMAXPROCS != newSnap.GOMAXPROCS:
		return fmt.Errorf("refusing to compare snapshots from different hosts: old GOMAXPROCS %d, new %d (re-run the baseline on this machine)",
			oldSnap.GOMAXPROCS, newSnap.GOMAXPROCS)
	}
	return nil
}

// Compare gates new against old: ns/op under timeTol, allocs/op and
// B/op under allocTol. Benchmarks missing on either side never fail.
func Compare(oldSnap, newSnap *Snapshot, timeTol, allocTol float64) []regression {
	var regs []regression
	names := make([]string, 0, len(newSnap.Benchmarks))
	for name := range newSnap.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ov, ok := oldSnap.Benchmarks[name]
		if !ok {
			continue
		}
		nw := newSnap.Benchmarks[name]
		check := func(metric string, oldV, newV, tol float64) {
			if oldV > 0 && newV > oldV*(1+tol) {
				regs = append(regs, regression{name, metric, oldV, newV, tol})
			}
		}
		check("ns/op", ov.NsPerOp, nw.NsPerOp, timeTol)
		check("allocs/op", ov.AllocsPerOp, nw.AllocsPerOp, allocTol)
		check("B/op", ov.BytesPerOp, nw.BytesPerOp, allocTol)
	}
	return regs
}
