// Command edramgen is the "memory compiler" front end of the §5
// concept: it builds a macro from a specification and writes all its
// views — behavioural Verilog, floorplan, liberty-style timing/power,
// test programs and the datasheet — the way an eDRAM supplier would
// deliver a first-time-right module.
//
// Usage:
//
//	edramgen -capacity 16 -iface 256 -redundancy std -out ./out
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"edram/internal/edram"
	"edram/internal/views"
)

func main() {
	capacity := flag.Int("capacity", 16, "macro capacity in Mbit")
	iface := flag.Int("iface", 256, "interface width in bits")
	banks := flag.Int("banks", 0, "bank count (0 = auto)")
	page := flag.Int("page", 0, "page length in bits (0 = auto)")
	redundancy := flag.String("redundancy", "std", "redundancy level: none, low, std, high")
	out := flag.String("out", "", "output directory (empty = print to stdout)")
	flag.Parse()

	var red edram.RedundancyLevel
	switch *redundancy {
	case "none":
		red = edram.RedundancyNone
	case "low":
		red = edram.RedundancyLow
	case "std":
		red = edram.RedundancyStd
	case "high":
		red = edram.RedundancyHigh
	default:
		fail(fmt.Errorf("unknown redundancy level %q", *redundancy))
	}

	m, err := edram.Build(edram.Spec{
		CapacityMbit:  *capacity,
		InterfaceBits: *iface,
		Banks:         *banks,
		PageBits:      *page,
		Redundancy:    red,
	})
	if err != nil {
		fail(err)
	}
	b, err := views.New(m)
	if err != nil {
		fail(err)
	}
	files, err := b.All()
	if err != nil {
		fail(err)
	}

	if *out == "" {
		for _, f := range files {
			fmt.Printf("===== %s =====\n%s\n", f.Name, f.Content)
		}
		return
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fail(err)
	}
	for _, f := range files {
		path := filepath.Join(*out, f.Name)
		if err := os.WriteFile(path, []byte(f.Content), 0o644); err != nil {
			fail(err)
		}
		fmt.Println("wrote", path)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "edramgen:", err)
	os.Exit(1)
}
