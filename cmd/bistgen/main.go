// Command bistgen exercises the DRAM test substrate (paper §6): it
// injects a random defect map into a cell array, runs the march suite
// and retention test, reports detection and repairability, and estimates
// production test time and cost on the three tester paths (memory
// tester, logic tester, on-chip BIST).
//
// Usage:
//
//	bistgen [-rows 256] [-cols 256] [-defects 6] [-spares 4] [-size 16]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"edram/internal/bist"
	"edram/internal/dram"
	"edram/internal/report"
	"edram/internal/units"
	"edram/internal/yield"
)

func main() {
	rows := flag.Int("rows", 256, "array rows")
	cols := flag.Int("cols", 256, "array columns")
	defects := flag.Float64("defects", 6, "mean injected defects")
	spares := flag.Int("spares", 4, "spare rows and columns")
	sizeMbit := flag.Int("size", 16, "macro size for the economics estimate, Mbit")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	a, err := dram.NewArray(*rows, *cols)
	if err != nil {
		fail(err)
	}
	faults, err := yield.GenerateDefects(rng, *rows, *cols, *defects, yield.DefaultMix())
	if err != nil {
		fail(err)
	}
	for _, f := range faults {
		if err := a.Inject(f); err != nil {
			fail(err)
		}
	}
	fmt.Printf("injected %d defects into a %dx%d array\n\n", len(faults), *rows, *cols)

	ru := bist.Runner{CycleNs: 10, ParallelBits: 256}
	t := report.New("test campaign", "test", "ops", "time ms", "failing cells")
	seenCells := map[[2]int]bool{}
	tMs := 0.0
	for _, alg := range bist.Algorithms() {
		res, err := ru.RunMarch(a, alg, tMs)
		if err != nil {
			fail(err)
		}
		tMs += res.TestTimeNs / 1e6
		for _, c := range res.FailingCells() {
			seenCells[c] = true
		}
		t.AddRow(alg.Name, res.Ops, res.TestTimeNs/1e6, len(res.FailingCells()))
	}
	ret, err := ru.RunRetention(a, 64, tMs)
	if err != nil {
		fail(err)
	}
	for _, c := range ret.FailingCells() {
		seenCells[c] = true
	}
	t.AddRow(ret.Algorithm, ret.Ops, ret.TestTimeNs/1e6, len(ret.FailingCells()))
	if err := t.Render(os.Stdout); err != nil {
		fail(err)
	}

	var cells [][2]int
	for c := range seenCells {
		cells = append(cells, c)
	}
	rep := yield.Repair(cells, *spares, *spares)
	fmt.Printf("\ndistinct failing cells: %d\n", len(cells))
	if rep.Repaired {
		fmt.Printf("repairable with %d spare rows + %d spare columns used\n", rep.UsedRows, rep.UsedCols)
	} else {
		fmt.Printf("NOT repairable with %d+%d spares (%d cells uncovered)\n", *spares, *spares, rep.Unrepaired)
	}

	// Economics.
	fmt.Println()
	e := report.New(fmt.Sprintf("production test economics, %d-Mbit macro", *sizeMbit),
		"path", "total s", "cost $")
	for _, tester := range []bist.Tester{bist.MemoryTester(), bist.LogicTester(), bist.BISTOnTester(256, 7)} {
		r, err := bist.Estimate(int64(*sizeMbit)*units.Mbit, tester, bist.DefaultFlow())
		if err != nil {
			fail(err)
		}
		e.AddRow(tester.Name, r.TotalS, r.CostUSD)
	}
	if err := e.Render(os.Stdout); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "bistgen:", err)
	os.Exit(1)
}
