// Command edramd serves the eDRAM design engine over HTTP: a
// stdlib-only JSON daemon exposing /v1/explore, /v1/recommend,
// /v1/simulate, /v1/datasheet and /v1/experiments, with a result
// cache, request coalescing, a shared worker pool and Prometheus
// metrics on /metrics. SIGINT/SIGTERM drain in-flight requests before
// the process exits.
//
// Usage:
//
//	edramd [-addr :8080] [-workers N] [-cache-entries N] [-cache-ttl 15m]
//	       [-timeout 60s] [-drain 10s] [-smoke]
//
// -smoke runs the self-test used by `make serve-smoke`: bind a random
// loopback port, exercise /healthz, /v1/recommend and /metrics with
// real HTTP calls, then deliver SIGTERM to the process itself and
// verify the graceful-drain path shuts the server down.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"edram/internal/service"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "edramd: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "evaluation worker pool size (0 = GOMAXPROCS)")
	cacheEntries := flag.Int("cache-entries", 0, "result cache capacity in entries (0 = default 256)")
	cacheTTL := flag.Duration("cache-ttl", 0, "result cache entry lifetime (0 = default 15m, negative = no expiry)")
	timeout := flag.Duration("timeout", 0, "per-request deadline (0 = default 60s)")
	drain := flag.Duration("drain", 0, "graceful shutdown drain budget (0 = default 10s)")
	smoke := flag.Bool("smoke", false, "run the serve-smoke self-test and exit")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof on this extra loopback address (e.g. 127.0.0.1:6060); off by default and never exposed on the serving mux")
	flag.Parse()

	cfg := service.Config{
		CacheEntries:   *cacheEntries,
		CacheTTL:       *cacheTTL,
		Workers:        *workers,
		RequestTimeout: *timeout,
		DrainTimeout:   *drain,
		AccessLog:      os.Stdout,
	}
	if *smoke {
		if err := runSmoke(cfg); err != nil {
			fail("smoke: %v", err)
		}
		fmt.Println("edramd: smoke ok")
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *pprofAddr != "" {
		if err := startPprof(*pprofAddr); err != nil {
			fail("pprof: %v", err)
		}
	}
	srv := service.NewServer(cfg)
	err := srv.ListenAndServe(ctx, *addr, func(a net.Addr) {
		fmt.Fprintf(os.Stderr, "edramd: listening on %s\n", a)
	})
	if err != nil {
		fail("%v", err)
	}
	fmt.Fprintln(os.Stderr, "edramd: drained, shutting down")
}

// startPprof serves the runtime profiling endpoints on their own mux
// and listener, fully separate from the API server: the debug surface
// is opt-in, bound to an operator-chosen (typically loopback) address,
// and can never leak onto the serving mux or be reached through it.
// Its lifetime is tied to the process, not the API drain path — an
// operator profiling a shutdown wants /debug/pprof alive through it.
func startPprof(addr string) error {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "edramd: pprof on http://%s/debug/pprof/\n", ln.Addr())
	go func() {
		if err := http.Serve(ln, mux); err != nil {
			fmt.Fprintf(os.Stderr, "edramd: pprof server stopped: %v\n", err)
		}
	}()
	return nil
}

// runSmoke is the end-to-end self-test: it exercises the real signal
// handling, listener, handlers and drain path in-process.
func runSmoke(cfg service.Config) error {
	cfg.AccessLog = io.Discard
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	srv := service.NewServer(cfg)
	addrCh := make(chan net.Addr, 1)
	errCh := make(chan error, 1)
	go func() {
		errCh <- srv.ListenAndServe(ctx, "127.0.0.1:0", func(a net.Addr) { addrCh <- a })
	}()
	var base string
	select {
	case a := <-addrCh:
		base = "http://" + a.String()
	case err := <-errCh:
		return fmt.Errorf("server did not start: %v", err)
	}

	client := &http.Client{Timeout: 30 * time.Second}

	// 1. Liveness.
	if err := expectJSON(client, "GET", base+"/healthz", ""); err != nil {
		return fmt.Errorf("healthz: %v", err)
	}
	// 2. One real recommendation sweep through the full stack.
	req := `{"capacity_mbit":16,"bandwidth_gbps":1.0,"hit_rate":0.5}`
	if err := expectJSON(client, "POST", base+"/v1/recommend", req); err != nil {
		return fmt.Errorf("recommend: %v", err)
	}
	// 3. The scrape endpoint reports the request we just made.
	body, err := fetch(client, "GET", base+"/metrics", "")
	if err != nil {
		return fmt.Errorf("metrics: %v", err)
	}
	if !strings.Contains(body, "edramd_requests_total") {
		return fmt.Errorf("metrics: edramd_requests_total series missing from scrape")
	}

	// 4. Deliver a real SIGTERM to ourselves and verify the drain path
	// brings ListenAndServe back with a clean shutdown.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		return fmt.Errorf("sending SIGTERM: %v", err)
	}
	select {
	case err := <-errCh:
		if err != nil {
			return fmt.Errorf("shutdown: %v", err)
		}
	case <-time.After(30 * time.Second):
		return fmt.Errorf("server did not drain within 30s of SIGTERM")
	}
	return nil
}

// fetch performs one request and returns the body (any status).
func fetch(client *http.Client, method, url, body string) (string, error) {
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		return "", err
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := client.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return string(b), fmt.Errorf("status %d: %s", resp.StatusCode, strings.TrimSpace(string(b)))
	}
	return string(b), nil
}

// expectJSON performs one request and requires a 200 with a valid JSON
// body.
func expectJSON(client *http.Client, method, url, body string) error {
	b, err := fetch(client, method, url, body)
	if err != nil {
		return err
	}
	var v any
	if err := json.Unmarshal([]byte(b), &v); err != nil {
		return fmt.Errorf("response is not valid JSON: %v", err)
	}
	return nil
}
