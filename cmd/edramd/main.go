// Command edramd serves the eDRAM design engine over HTTP: a
// stdlib-only JSON daemon exposing /v1/explore, /v1/recommend,
// /v1/simulate, /v1/datasheet, /v1/experiments, /v1/scenario and the
// async job API (/v1/jobs), with a result cache, request coalescing, a
// shared worker pool, admission control and Prometheus metrics on
// /metrics. SIGINT/SIGTERM drain in-flight requests before the process
// exits; /readyz flips to 503 first so load balancers stop routing.
//
// Usage:
//
//	edramd [-addr :8080] [-workers N] [-cache-entries N] [-cache-ttl 15m]
//	       [-timeout 60s] [-drain 10s] [-queue-depth 32]
//	       [-jobs-dir DIR] [-max-jobs 64] [-max-active-jobs 2]
//	       [-async-threshold N] [-warmup CAP:BW:HIT,...]
//	       [-peers URL,URL] [-shard N] [-hedge-after 2s]
//	       [-cache-dir DIR] [-smoke] [-shard-smoke]
//
// -jobs-dir enables resumable jobs: running jobs checkpoint there and
// a restarted daemon resumes them before marking itself ready.
// -warmup primes the explore cache before /readyz goes green.
//
// -peers and -shard enable sharded exploration: sweeps are
// partitioned across the local worker pool and the listed peer
// daemons, with dead-peer partitions retried locally — responses stay
// byte-identical to the single-process sweep. -cache-dir enables the
// persistent disk cache tier: responses survive restarts in an
// append-only segment log and /readyz stays 503 until the replay
// completes.
//
// -smoke runs the self-test used by `make serve-smoke`: bind a random
// loopback port, exercise /healthz, /readyz, /v1/recommend, the job
// API and /metrics with real HTTP calls, then deliver SIGTERM to the
// process itself and verify the graceful-drain path shuts the server
// down. -shard-smoke runs the scale-out self-test used by
// `make shard-smoke`: spawn two real peer processes, shard explores
// across them, SIGKILL one, and verify byte parity throughout.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"edram/internal/core"
	"edram/internal/service"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "edramd: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "evaluation worker pool size (0 = GOMAXPROCS)")
	cacheEntries := flag.Int("cache-entries", 0, "result cache capacity in entries (0 = default 256)")
	cacheTTL := flag.Duration("cache-ttl", 0, "result cache entry lifetime (0 = default 15m, negative = no expiry)")
	timeout := flag.Duration("timeout", 0, "per-request deadline (0 = default 60s)")
	drain := flag.Duration("drain", 0, "graceful shutdown drain budget (0 = default 10s)")
	queueDepth := flag.Int("queue-depth", 0, "admission queue bound (0 = default 32, negative = unbounded)")
	jobsDir := flag.String("jobs-dir", "", "checkpoint directory for resumable async jobs (empty = memory-only jobs)")
	maxJobs := flag.Int("max-jobs", 0, "job registry capacity (0 = default 64)")
	maxActiveJobs := flag.Int("max-active-jobs", 0, "concurrently running job bound (0 = default 2)")
	asyncThreshold := flag.Int("async-threshold", 0, "convert sync explores over this many sweep points into async jobs (0 = never)")
	warmup := flag.String("warmup", "", "comma-separated CAP_MBIT:BW_GBPS:HIT_RATE triples to pre-explore into the cache before readiness")
	peers := flag.String("peers", "", "comma-separated base URLs of peer edramd daemons to shard explores across")
	shardParts := flag.Int("shard", 0, "shard explores into this many partitions (0 = auto when -peers is set, off otherwise)")
	hedgeAfter := flag.Duration("hedge-after", 0, "hedge straggling shard partitions locally after this long (0 = default)")
	cacheDir := flag.String("cache-dir", "", "persistent disk cache directory (empty = memory-only caching)")
	smoke := flag.Bool("smoke", false, "run the serve-smoke self-test and exit")
	shardSmoke := flag.Bool("shard-smoke", false, "run the 3-process sharded-explore self-test and exit")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof on this extra loopback address (e.g. 127.0.0.1:6060); off by default and never exposed on the serving mux")
	flag.Parse()

	cfg := service.Config{
		CacheEntries:        *cacheEntries,
		CacheTTL:            *cacheTTL,
		Workers:             *workers,
		RequestTimeout:      *timeout,
		DrainTimeout:        *drain,
		MaxQueueDepth:       *queueDepth,
		JobDir:              *jobsDir,
		MaxJobs:             *maxJobs,
		MaxActiveJobs:       *maxActiveJobs,
		AsyncPointThreshold: *asyncThreshold,
		ShardParts:          *shardParts,
		ShardHedgeAfter:     *hedgeAfter,
		CacheDir:            *cacheDir,
		AccessLog:           os.Stdout,
	}
	if *peers != "" {
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				cfg.Peers = append(cfg.Peers, p)
			}
		}
	}
	warmupReqs, err := parseWarmup(*warmup)
	if err != nil {
		fail("%v", err)
	}
	if *shardSmoke {
		if err := runShardSmoke(); err != nil {
			fail("shard-smoke: %v", err)
		}
		fmt.Println("edramd: shard-smoke ok")
		return
	}
	if *smoke {
		if err := runSmoke(cfg); err != nil {
			fail("smoke: %v", err)
		}
		fmt.Println("edramd: smoke ok")
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *pprofAddr != "" {
		if err := startPprof(*pprofAddr); err != nil {
			fail("pprof: %v", err)
		}
	}
	srv := service.NewServer(cfg)
	if err := srv.DiskCacheErr(); err != nil {
		fail("disk cache %s: %v", *cacheDir, err)
	}
	if n := srv.DiskStats().ReplayedEntries; n > 0 {
		fmt.Fprintf(os.Stderr, "edramd: disk cache replayed %d entries\n", n)
	}
	// Startup order matters for /readyz: resume persisted jobs, warm
	// the cache, and only then join the load balancer rotation.
	if n, err := srv.ResumeJobs(); err != nil {
		fail("resuming jobs: %v", err)
	} else if n > 0 {
		fmt.Fprintf(os.Stderr, "edramd: resumed %d checkpointed jobs\n", n)
	}
	if len(warmupReqs) > 0 {
		if err := srv.Warmup(ctx, warmupReqs); err != nil {
			fail("warmup: %v", err)
		}
		fmt.Fprintf(os.Stderr, "edramd: cache warmed with %d explores\n", len(warmupReqs))
	}
	srv.MarkReady()
	err = srv.ListenAndServe(ctx, *addr, func(a net.Addr) {
		fmt.Fprintf(os.Stderr, "edramd: listening on %s\n", a)
	})
	if err != nil {
		fail("%v", err)
	}
	fmt.Fprintln(os.Stderr, "edramd: drained, shutting down")
}

// parseWarmup parses the -warmup flag: comma-separated
// CAP_MBIT:BW_GBPS:HIT_RATE triples.
func parseWarmup(s string) ([]core.Requirements, error) {
	if s == "" {
		return nil, nil
	}
	var reqs []core.Requirements
	for _, part := range strings.Split(s, ",") {
		var r core.Requirements
		if _, err := fmt.Sscanf(part, "%d:%f:%f", &r.CapacityMbit, &r.BandwidthGBps, &r.HitRate); err != nil {
			return nil, fmt.Errorf("warmup entry %q: want CAP_MBIT:BW_GBPS:HIT_RATE: %v", part, err)
		}
		reqs = append(reqs, r)
	}
	return reqs, nil
}

// startPprof serves the runtime profiling endpoints on their own mux
// and listener, fully separate from the API server: the debug surface
// is opt-in, bound to an operator-chosen (typically loopback) address,
// and can never leak onto the serving mux or be reached through it.
// Its lifetime is tied to the process, not the API drain path — an
// operator profiling a shutdown wants /debug/pprof alive through it.
func startPprof(addr string) error {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "edramd: pprof on http://%s/debug/pprof/\n", ln.Addr())
	go func() {
		if err := http.Serve(ln, mux); err != nil {
			fmt.Fprintf(os.Stderr, "edramd: pprof server stopped: %v\n", err)
		}
	}()
	return nil
}

// runSmoke is the end-to-end self-test: it exercises the real signal
// handling, listener, handlers and drain path in-process.
func runSmoke(cfg service.Config) error {
	cfg.AccessLog = io.Discard
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	srv := service.NewServer(cfg)
	addrCh := make(chan net.Addr, 1)
	errCh := make(chan error, 1)
	go func() {
		errCh <- srv.ListenAndServe(ctx, "127.0.0.1:0", func(a net.Addr) { addrCh <- a })
	}()
	var base string
	select {
	case a := <-addrCh:
		base = "http://" + a.String()
	case err := <-errCh:
		return fmt.Errorf("server did not start: %v", err)
	}

	client := &http.Client{Timeout: 30 * time.Second}

	// 1. Liveness — and readiness, which must lag it: the process is
	// alive before it has marked itself ready for traffic.
	if err := expectJSON(client, "GET", base+"/healthz", ""); err != nil {
		return fmt.Errorf("healthz: %v", err)
	}
	if body, err := fetch(client, "GET", base+"/readyz", ""); err == nil {
		return fmt.Errorf("readyz answered 200 before MarkReady: %s", body)
	}
	srv.MarkReady()
	if err := expectJSON(client, "GET", base+"/readyz", ""); err != nil {
		return fmt.Errorf("readyz after MarkReady: %v", err)
	}
	// 2. One real recommendation sweep through the full stack.
	req := `{"capacity_mbit":16,"bandwidth_gbps":1.0,"hit_rate":0.5}`
	if err := expectJSON(client, "POST", base+"/v1/recommend", req); err != nil {
		return fmt.Errorf("recommend: %v", err)
	}
	// 3. The async job API: submit an explore job, poll it to success,
	// fetch the result.
	if err := smokeJob(client, base); err != nil {
		return fmt.Errorf("jobs: %v", err)
	}
	// 4. The scrape endpoint reports the requests we just made.
	body, err := fetch(client, "GET", base+"/metrics", "")
	if err != nil {
		return fmt.Errorf("metrics: %v", err)
	}
	if !strings.Contains(body, "edramd_requests_total") {
		return fmt.Errorf("metrics: edramd_requests_total series missing from scrape")
	}

	// 5. Deliver a real SIGTERM to ourselves and verify the drain path
	// brings ListenAndServe back with a clean shutdown.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		return fmt.Errorf("sending SIGTERM: %v", err)
	}
	select {
	case err := <-errCh:
		if err != nil {
			return fmt.Errorf("shutdown: %v", err)
		}
	case <-time.After(30 * time.Second):
		return fmt.Errorf("server did not drain within 30s of SIGTERM")
	}
	return nil
}

// smokeJob drives the async job lifecycle end to end: submit, poll,
// result.
func smokeJob(client *http.Client, base string) error {
	body, err := fetch(client, "POST", base+"/v1/jobs",
		`{"kind":"explore","explore":{"capacity_mbit":16,"bandwidth_gbps":1.0,"hit_rate":0.5}}`)
	if err != nil && !strings.Contains(body, `"state"`) {
		return fmt.Errorf("submit: %v", err)
	}
	var status struct {
		ID         string `json:"id"`
		State      string `json:"state"`
		Error      string `json:"error"`
		ResultPath string `json:"result_path"`
	}
	if err := json.Unmarshal([]byte(body), &status); err != nil {
		return fmt.Errorf("submit response: %v", err)
	}
	for i := 0; i < 300 && status.State == "running"; i++ {
		time.Sleep(100 * time.Millisecond)
		b, err := fetch(client, "GET", base+"/v1/jobs/"+status.ID, "")
		if err != nil {
			return fmt.Errorf("poll: %v", err)
		}
		if err := json.Unmarshal([]byte(b), &status); err != nil {
			return fmt.Errorf("poll response: %v", err)
		}
	}
	if status.State != "succeeded" {
		return fmt.Errorf("job finished %q (error %q), want succeeded", status.State, status.Error)
	}
	if err := expectJSON(client, "GET", base+status.ResultPath, ""); err != nil {
		return fmt.Errorf("result: %v", err)
	}
	return nil
}

// fetch performs one request and returns the body (any status).
func fetch(client *http.Client, method, url, body string) (string, error) {
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		return "", err
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := client.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return string(b), fmt.Errorf("status %d: %s", resp.StatusCode, strings.TrimSpace(string(b)))
	}
	return string(b), nil
}

// expectJSON performs one request and requires a 200 with a valid JSON
// body.
func expectJSON(client *http.Client, method, url, body string) error {
	b, err := fetch(client, method, url, body)
	if err != nil {
		return err
	}
	var v any
	if err := json.Unmarshal([]byte(b), &v); err != nil {
		return fmt.Errorf("response is not valid JSON: %v", err)
	}
	return nil
}
