// The shard-smoke self-test: the real 3-process topology `make
// shard-smoke` and CI run. The process re-executes itself twice as
// peer daemons on loopback ports, hosts a coordinator configured with
// those peers, and verifies the scale-out contract end to end —
// remote-shard byte parity with a single-process sweep, SIGKILL of a
// peer surviving via local re-execution, and a sharded explore
// through the async job API after the kill.

package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"time"

	"edram/internal/service"
)

// unmarshalStatus decodes a job status JSON body.
func unmarshalStatus(body string, v any) error {
	if err := json.Unmarshal([]byte(body), v); err != nil {
		return fmt.Errorf("job status response %q: %v", body, err)
	}
	return nil
}

// smoke bodies: three distinct explores (different power caps) so
// each parity check is a genuine computation, never a cache hit.
const (
	shardSmokeBodyA = `{"capacity_mbit":16,"bandwidth_gbps":1.0,"hit_rate":0.5}`
	shardSmokeBodyB = `{"capacity_mbit":16,"bandwidth_gbps":1.0,"hit_rate":0.5,"max_power_mw":500.5}`
	shardSmokeBodyC = `{"capacity_mbit":16,"bandwidth_gbps":1.0,"hit_rate":0.5,"max_power_mw":600.5}`
)

// peerProc is one spawned peer daemon.
type peerProc struct {
	cmd  *exec.Cmd
	base string
}

func (p *peerProc) kill() {
	if p.cmd.Process != nil {
		_ = p.cmd.Process.Kill()
	}
	_ = p.cmd.Wait()
}

// startPeer re-executes this binary as a plain daemon on a random
// loopback port and waits until it reports its address and answers
// /readyz.
func startPeer(client *http.Client) (*peerProc, error) {
	bin, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("locating own binary: %v", err)
	}
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-workers", "2")
	cmd.Stdout = io.Discard
	stderr, err := cmd.StderrPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("starting peer: %v", err)
	}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			if a, ok := strings.CutPrefix(sc.Text(), "edramd: listening on "); ok {
				select {
				case addrCh <- strings.TrimSpace(a):
				default:
				}
			}
		}
	}()
	p := &peerProc{cmd: cmd}
	select {
	case a := <-addrCh:
		p.base = "http://" + a
	case <-time.After(30 * time.Second):
		p.kill()
		return nil, fmt.Errorf("peer never reported a listening address")
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := client.Get(p.base + "/readyz")
		if err == nil {
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return p, nil
			}
		}
		if time.Now().After(deadline) {
			p.kill()
			return nil, fmt.Errorf("peer %s never became ready", p.base)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// hostServer runs an in-process server on a loopback port and returns
// its base URL plus a drain func.
func hostServer(cfg service.Config) (string, func() error, error) {
	srv := service.NewServer(cfg)
	if err := srv.DiskCacheErr(); err != nil {
		return "", nil, fmt.Errorf("disk cache: %v", err)
	}
	srv.MarkReady()
	ctx, cancel := context.WithCancel(context.Background())
	addrCh := make(chan net.Addr, 1)
	errCh := make(chan error, 1)
	go func() {
		errCh <- srv.ListenAndServe(ctx, "127.0.0.1:0", func(a net.Addr) { addrCh <- a })
	}()
	select {
	case a := <-addrCh:
		return "http://" + a.String(), func() error {
			cancel()
			return <-errCh
		}, nil
	case err := <-errCh:
		cancel()
		return "", nil, fmt.Errorf("server did not start: %v", err)
	}
}

// runShardSmoke is the scale-out end-to-end self-test.
func runShardSmoke() error {
	client := &http.Client{Timeout: 2 * time.Minute}

	// Reference: the canonical single-process bytes every sharded
	// topology must reproduce.
	refBase, refStop, err := hostServer(service.Config{AccessLog: io.Discard, Workers: 2})
	if err != nil {
		return fmt.Errorf("reference server: %v", err)
	}
	refs := map[string]string{}
	for _, body := range []string{shardSmokeBodyA, shardSmokeBodyB, shardSmokeBodyC} {
		b, err := fetch(client, "POST", refBase+"/v1/explore", body)
		if err != nil {
			refStop()
			return fmt.Errorf("reference explore: %v", err)
		}
		refs[body] = b
	}
	if err := refStop(); err != nil {
		return fmt.Errorf("reference drain: %v", err)
	}

	// The 3-process topology: two real peer daemons + a coordinator
	// sharding across them, with the disk tier and job API on.
	peer1, err := startPeer(client)
	if err != nil {
		return err
	}
	defer peer1.kill()
	peer2, err := startPeer(client)
	if err != nil {
		return err
	}
	defer peer2.kill()

	cacheDir, err := os.MkdirTemp("", "edramd-shard-smoke-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(cacheDir)
	jobDir, err := os.MkdirTemp("", "edramd-shard-smoke-jobs-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(jobDir)
	base, stop, err := hostServer(service.Config{
		AccessLog:  io.Discard,
		Workers:    2,
		Peers:      []string{peer1.base, peer2.base},
		ShardParts: 4,
		CacheDir:   cacheDir,
		JobDir:     jobDir,
	})
	if err != nil {
		return fmt.Errorf("coordinator: %v", err)
	}
	defer stop()

	// 1. Remote-shard parity with both peers alive.
	got, err := fetch(client, "POST", base+"/v1/explore", shardSmokeBodyA)
	if err != nil {
		return fmt.Errorf("sharded explore: %v", err)
	}
	if got != refs[shardSmokeBodyA] {
		return fmt.Errorf("sharded explore differs from single-process bytes (%d vs %d bytes)",
			len(got), len(refs[shardSmokeBodyA]))
	}

	// 2. SIGKILL one peer: its partitions must re-execute on the
	// survivors with the response still byte-identical.
	peer1.kill()
	got, err = fetch(client, "POST", base+"/v1/explore", shardSmokeBodyC)
	if err != nil {
		return fmt.Errorf("explore after peer kill: %v", err)
	}
	if got != refs[shardSmokeBodyC] {
		return fmt.Errorf("explore after peer kill differs from single-process bytes (%d vs %d bytes)",
			len(got), len(refs[shardSmokeBodyC]))
	}

	// 3. The job API over the degraded topology.
	if err := shardSmokeJob(client, base, refs[shardSmokeBodyB]); err != nil {
		return fmt.Errorf("sharded job: %v", err)
	}

	// 4. The scrape tells the same story: sharded explores ran, the
	// dead peer was noticed, both cache tiers are exported.
	metricsBody, err := fetch(client, "GET", base+"/metrics", "")
	if err != nil {
		return fmt.Errorf("metrics: %v", err)
	}
	for _, series := range []string{
		"edramd_shard_explores_total",
		`edramd_shard_partitions_total{target="remote"}`,
		"edramd_shard_peer_failures_total",
		`edramd_cache_tier_hits_total{tier="disk"}`,
		`edramd_cache_tier_misses_total{tier="memory"}`,
	} {
		if !strings.Contains(metricsBody, series) {
			return fmt.Errorf("metrics: series %s missing from scrape", series)
		}
	}
	if strings.Contains(metricsBody, "edramd_shard_peer_failures_total 0\n") {
		return fmt.Errorf("metrics: peer kill was not recorded in edramd_shard_peer_failures_total")
	}
	return nil
}

// shardSmokeJob submits a sharded explore through the async job API
// and requires the result bytes to match the single-process sweep.
func shardSmokeJob(client *http.Client, base, want string) error {
	body, err := fetch(client, "POST", base+"/v1/jobs",
		`{"kind":"explore","explore":`+shardSmokeBodyB+`}`)
	if err != nil && !strings.Contains(body, `"state"`) {
		return fmt.Errorf("submit: %v", err)
	}
	var status struct {
		ID         string `json:"id"`
		State      string `json:"state"`
		Error      string `json:"error"`
		ResultPath string `json:"result_path"`
	}
	if err := unmarshalStatus(body, &status); err != nil {
		return err
	}
	for i := 0; i < 600 && (status.State == "running" || status.State == "pending"); i++ {
		time.Sleep(100 * time.Millisecond)
		b, err := fetch(client, "GET", base+"/v1/jobs/"+status.ID, "")
		if err != nil {
			return fmt.Errorf("poll: %v", err)
		}
		if err := unmarshalStatus(b, &status); err != nil {
			return err
		}
	}
	if status.State != "succeeded" {
		return fmt.Errorf("job finished %q (error %q), want succeeded", status.State, status.Error)
	}
	got, err := fetch(client, "GET", base+status.ResultPath, "")
	if err != nil {
		return fmt.Errorf("result: %v", err)
	}
	if got != want {
		return fmt.Errorf("job result differs from single-process bytes (%d vs %d bytes)", len(got), len(want))
	}
	return nil
}
