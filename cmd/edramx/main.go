// Command edramx is the embedded-DRAM design-space explorer: given the
// application's capacity, sustained-bandwidth and constraint
// requirements, it enumerates the paper §3 design space (interface
// width, banks, page length, building block, redundancy), prints the
// feasible Pareto frontier and the quantized recommendations, and emits
// the datasheet of the chosen configuration.
//
// Usage:
//
//	edramx -capacity 16 -bandwidth 2.5 -hitrate 0.8 [-maxarea 20] [-maxpower 800] [-role min-area]
package main

import (
	"flag"
	"fmt"
	"os"

	"edram/internal/core"
	"edram/internal/report"
)

func main() {
	capacity := flag.Int("capacity", 16, "required capacity in Mbit")
	bandwidth := flag.Float64("bandwidth", 2.0, "required sustained bandwidth in GB/s")
	hitrate := flag.Float64("hitrate", 0.8, "expected page-hit rate of the workload")
	maxArea := flag.Float64("maxarea", 0, "macro area cap in mm² (0 = none)")
	maxPower := flag.Float64("maxpower", 0, "macro busy-power cap in mW (0 = none)")
	defects := flag.Float64("defects", 0.8, "defect density in defects/cm²")
	role := flag.String("role", "", "print the datasheet of one recommendation (min-area, min-power, max-bandwidth, min-cost)")
	pareto := flag.Bool("pareto", false, "also print the full feasible Pareto frontier")
	flag.Parse()

	req := core.Requirements{
		CapacityMbit:  *capacity,
		BandwidthGBps: *bandwidth,
		HitRate:       *hitrate,
		MaxAreaMm2:    *maxArea,
		MaxPowerMW:    *maxPower,
		DefectsPerCm2: *defects,
	}
	recs, err := core.Recommend(req)
	if err != nil {
		fmt.Fprintln(os.Stderr, "edramx:", err)
		os.Exit(1)
	}

	t := report.New(fmt.Sprintf("recommendations for %d Mbit @ %.1f GB/s sustained", *capacity, *bandwidth),
		"role", "macros", "iface", "banks", "page", "block Kbit", "redundancy",
		"area mm2", "power mW", "sustained GB/s", "die $")
	for _, r := range recs {
		t.AddRow(r.Role, r.Macros, r.Spec.InterfaceBits, r.Macro.Geometry.Banks,
			r.Macro.Geometry.PageBits, r.Spec.BlockBits/1024, r.Spec.Redundancy.String(),
			r.AreaMm2, r.PowerMW, r.SustainedGBps, r.CostUSD)
	}
	if err := t.Render(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "edramx:", err)
		os.Exit(1)
	}

	if *pareto {
		cands, err := core.Explore(req)
		if err != nil {
			fmt.Fprintln(os.Stderr, "edramx:", err)
			os.Exit(1)
		}
		front := core.Pareto(core.Feasible(cands))
		fmt.Println()
		pt := report.New(fmt.Sprintf("feasible Pareto frontier (%d points)", len(front)),
			"macros", "iface", "banks", "page", "block Kbit", "redundancy",
			"area mm2", "power mW", "sustained GB/s", "die $")
		for _, c := range front {
			pt.AddRow(c.Macros, c.Spec.InterfaceBits, c.Spec.Banks, c.Spec.PageBits,
				c.Spec.BlockBits/1024, c.Spec.Redundancy.String(),
				c.AreaMm2, c.PowerMW, c.SustainedGBps, c.CostUSD)
		}
		if err := pt.Render(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "edramx:", err)
			os.Exit(1)
		}
	}

	if *role != "" {
		for _, r := range recs {
			if r.Role == *role {
				fmt.Println()
				fmt.Print(r.Macro.Datasheet())
				return
			}
		}
		fmt.Fprintf(os.Stderr, "edramx: no recommendation with role %q\n", *role)
		os.Exit(1)
	}
}
