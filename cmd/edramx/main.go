// Command edramx is the embedded-DRAM design-space explorer: given the
// application's capacity, sustained-bandwidth and constraint
// requirements, it enumerates the paper §3 design space (interface
// width, banks, page length, building block, redundancy) on a parallel
// worker pool, prints the feasible Pareto frontier and the quantized
// recommendations, and emits the datasheet of the chosen configuration.
// Exploration progress is reported on stderr.
//
// Usage:
//
//	edramx -capacity 16 -bandwidth 2.5 -hitrate 0.8 [-workers 8] [-maxarea 20] [-maxpower 800] [-role min-area]
//	edramx -capacity 16 -bandwidth 1.0 -hitrate 0.5 -delta maxarea=25 [-json]
//	edramx -scenario examples/scenarios/mpeg2-pal-decoder.json [-json]
//	edramx -scenario-validate examples/scenarios
//
// -scenario evaluates a declarative scenario file (see
// internal/scenario and the examples/scenarios corpus) through the
// same loader and builders as edramd's POST /v1/scenario — with -json
// the output is byte-identical to the endpoint's response.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"

	"edram/internal/core"
	"edram/internal/profiling"
	"edram/internal/report"
	"edram/internal/scenario"
	"edram/internal/service"
)

func main() {
	capacity := flag.Int("capacity", 16, "required capacity in Mbit")
	bandwidth := flag.Float64("bandwidth", 2.0, "required sustained bandwidth in GB/s")
	hitrate := flag.Float64("hitrate", 0.8, "expected page-hit rate of the workload")
	maxArea := flag.Float64("maxarea", 0, "macro area cap in mm² (0 = none)")
	maxPower := flag.Float64("maxpower", 0, "macro busy-power cap in mW (0 = none)")
	defects := flag.Float64("defects", 0.8, "defect density in defects/cm²")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "evaluation worker-pool size")
	quiet := flag.Bool("quiet", false, "suppress the progress line on stderr")
	role := flag.String("role", "", "print the datasheet of one recommendation (min-area, min-power, max-bandwidth, min-cost)")
	pareto := flag.Bool("pareto", false, "also print the full feasible Pareto frontier")
	prune := flag.Bool("prune", false, "skip provably infeasible subspaces analytically in the table path (same recommendations; nearest-miss diagnostics get coarser because skipped points never surface)")
	delta := flag.String("delta", "", "incremental re-exploration: sweep the flag-built requirements once, then re-explore with one constraint changed (field=value; field is bandwidth, maxarea, maxpower or minclock) and emit the delta run's JSON on stdout")
	jsonOut := flag.Bool("json", false, "emit the exploration as JSON on stdout (the exact POST /v1/explore schema)")
	scenFile := flag.String("scenario", "", "evaluate a declarative scenario file instead of flag-built requirements (with -json: the exact POST /v1/scenario schema)")
	scenDir := flag.String("scenario-validate", "", "load and compile every *.json scenario in this directory, then exit (corpus check)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the exploration to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	stopProf, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		fail(err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fail(err)
		}
	}()

	if *scenDir != "" {
		validateCorpus(*scenDir)
		return
	}
	if *scenFile != "" {
		runScenario(*scenFile, *jsonOut, *workers)
		return
	}

	req := core.Requirements{
		CapacityMbit:  *capacity,
		BandwidthGBps: *bandwidth,
		HitRate:       *hitrate,
		MaxAreaMm2:    *maxArea,
		MaxPowerMW:    *maxPower,
		DefectsPerCm2: *defects,
	}
	// Same validation (and the same messages) as the service layer.
	if err := req.Validate(); err != nil {
		fail(err)
	}

	if *delta != "" {
		runDelta(req, *delta, *workers, *quiet)
		return
	}

	if *jsonOut {
		// The JSON path is the service's explore builder verbatim, so a
		// scripted `edramx -json` and a curl of POST /v1/explore are
		// byte-identical (the parity tests pin this down).
		var progress func(core.ExploreStats)
		if !*quiet {
			progress = progressLine
		}
		resp, err := service.BuildExplore(context.Background(), req, *workers, progress)
		if err != nil {
			fail(err)
		}
		b, err := service.Encode(resp)
		if err != nil {
			fail(err)
		}
		os.Stdout.Write(b)
		return
	}

	// One streaming pass feeds the incremental Pareto front, the
	// nearest-miss diagnostics and the progress line at once; the old
	// Recommend+Explore pair walked the space twice. Final stats are
	// captured so the empty-sweep check also counts points a -prune run
	// skipped analytically (TotalBuilt folds them back in).
	var final core.ExploreStats
	capture := func(s core.ExploreStats) {
		if s.Done {
			final = s
		}
		if !*quiet {
			progressLine(s)
		}
	}
	opts := []core.ExploreOption{core.WithWorkers(*workers), core.WithProgressEvery(128), core.WithProgress(capture)}
	if *prune {
		opts = append(opts, core.WithPruning())
	}
	ch, err := core.ExploreContext(context.Background(), req, opts...)
	if err != nil {
		fail(err)
	}
	front := core.NewFrontier()
	var nearest core.Candidate
	nearestSet := false
	for c := range ch {
		if c.Feasible {
			front.Add(c)
			continue
		}
		if !nearestSet || len(c.Reasons) < len(nearest.Reasons) {
			nearest, nearestSet = c, true
		}
	}
	if final.TotalBuilt() == 0 {
		fail(fmt.Errorf("no buildable configuration for %+v", req))
	}
	if front.Size() == 0 {
		fail(fmt.Errorf("no feasible configuration; closest misses: %v", nearest.Reasons))
	}
	frontier := front.Candidates()
	recs := core.Quantize(frontier)

	t := report.New(fmt.Sprintf("recommendations for %d Mbit @ %.1f GB/s sustained", *capacity, *bandwidth),
		"role", "macros", "iface", "banks", "page", "block Kbit", "redundancy",
		"area mm2", "power mW", "sustained GB/s", "die $")
	for _, r := range recs {
		t.AddRow(r.Role, r.Macros, r.Spec.InterfaceBits, r.Macro.Geometry.Banks,
			r.Macro.Geometry.PageBits, r.Spec.BlockBits/1024, r.Spec.Redundancy.String(),
			r.AreaMm2, r.PowerMW, r.SustainedGBps, r.CostUSD)
	}
	if err := t.Render(os.Stdout); err != nil {
		fail(err)
	}

	if *pareto {
		fmt.Println()
		pt := report.New(fmt.Sprintf("feasible Pareto frontier (%d points)", len(frontier)),
			"macros", "iface", "banks", "page", "block Kbit", "redundancy",
			"area mm2", "power mW", "sustained GB/s", "die $")
		for _, c := range frontier {
			pt.AddRow(c.Macros, c.Spec.InterfaceBits, c.Spec.Banks, c.Spec.PageBits,
				c.Spec.BlockBits/1024, c.Spec.Redundancy.String(),
				c.AreaMm2, c.PowerMW, c.SustainedGBps, c.CostUSD)
		}
		if err := pt.Render(os.Stdout); err != nil {
			fail(err)
		}
	}

	if *role != "" {
		for _, r := range recs {
			if r.Role == *role {
				fmt.Println()
				fmt.Print(r.Macro.Datasheet())
				return
			}
		}
		fail(fmt.Errorf("no recommendation with role %q", *role))
	}
}

// runDelta is the CLI form of edramd's delta cache tier: one cold
// recorded sweep of the flag-built requirements, then an incremental
// re-exploration with a single constraint changed. Stdout carries the
// delta run's response JSON — byte-identical to a cold `edramx -json`
// of the tweaked requirements (the core parity tests pin this) —
// and stderr reports how much of the retained sweep was reused.
func runDelta(base core.Requirements, spec string, workers int, quiet bool) {
	newReq, err := applyDelta(base, spec)
	if err != nil {
		fail(err)
	}
	st, err := core.NewDeltaState(base)
	if err != nil {
		fail(err)
	}
	var progress func(core.ExploreStats)
	if !quiet {
		progress = progressLine
	}
	if _, err := service.BuildExplore(context.Background(), base, workers, progress, core.WithObserver(st.Observe)); err != nil {
		fail(err)
	}
	st.Seal()
	resp, res, err := service.BuildExploreDelta(context.Background(), st, newReq, workers)
	if err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "delta: %d retained evals, %d points swept fresh, %d reused\n",
		st.Evals(), res.Swept, res.Reused)
	b, err := service.Encode(resp)
	if err != nil {
		fail(err)
	}
	os.Stdout.Write(b)
}

// applyDelta parses a field=value constraint tweak. Only the four pure
// constraint fields are legal — anything structural (capacity, hit
// rate, defects) changes the sweep itself and has no delta form.
func applyDelta(req core.Requirements, spec string) (core.Requirements, error) {
	field, val, ok := strings.Cut(spec, "=")
	if !ok {
		return req, fmt.Errorf("-delta wants field=value, got %q", spec)
	}
	f, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return req, fmt.Errorf("-delta value %q: %v", val, err)
	}
	switch field {
	case "bandwidth":
		req.BandwidthGBps = f
	case "maxarea":
		req.MaxAreaMm2 = f
	case "maxpower":
		req.MaxPowerMW = f
	case "minclock":
		req.MinClockMHz = f
	default:
		return req, fmt.Errorf("-delta field %q (want bandwidth, maxarea, maxpower or minclock)", field)
	}
	return req, req.Validate()
}

// runScenario evaluates one declarative scenario file. The loader (and
// so the error vocabulary) is exactly the service's: an invalid file
// fails here with the same aggregate message a POST /v1/scenario 400
// carries, and -json output is byte-identical to the endpoint's
// response.
func runScenario(path string, jsonOut bool, workers int) {
	scn, err := scenario.Load(path)
	if err != nil {
		fail(err)
	}
	resp, err := service.BuildScenario(context.Background(), scn, workers)
	if err != nil {
		fail(err)
	}
	if jsonOut {
		b, err := service.Encode(resp)
		if err != nil {
			fail(err)
		}
		os.Stdout.Write(b)
		return
	}
	fmt.Printf("scenario %s (%d levels)\n", resp.Name, len(resp.Levels))
	for _, l := range resp.Levels {
		fmt.Println()
		switch l.Kind {
		case "edram":
			fmt.Printf("level %s: eDRAM %d Mbit, %d-bit interface @ %.0f MHz — %.2f mm², %.1f GB/s peak\n",
				l.Name, l.Spec.CapacityMbit, l.Spec.InterfaceBits, l.ClockMHz, l.AreaMm2, l.PeakGBps)
			fmt.Printf("  sweep: %d points, %d built, %d infeasible\n", l.Points, l.Built, l.Infeasible)
			if len(l.Picks) == 0 {
				fmt.Println("  no feasible configuration under the scenario's constraints")
			} else {
				t := report.New(fmt.Sprintf("recommendations for %s (%d Mbit @ %s GB/s sustained)",
					l.Name, l.Requirements.CapacityMbit, strconv.FormatFloat(l.Requirements.BandwidthGBps, 'g', -1, 64)),
					"role", "macros", "iface", "banks", "page", "block Kbit", "redundancy",
					"area mm2", "power mW", "sustained GB/s", "die $")
				for _, r := range l.Picks {
					t.AddRow(r.Role, r.Macros, r.Spec.InterfaceBits, r.Spec.Banks,
						r.Spec.PageBits, r.Spec.BlockBits/1024, r.Spec.Redundancy.String(),
						r.AreaMm2, r.PowerMW, r.SustainedGBps, r.CostUSD)
				}
				if err := t.Render(os.Stdout); err != nil {
					fail(err)
				}
			}
			if sim := l.Simulation; sim != nil {
				fmt.Printf("  simulation (%s): %.2f of %.2f GB/s sustained (%.0f%%), hit rate %.2f\n",
					sim.Policy, sim.SustainedGBps, sim.PeakGBps, 100*sim.SustainedFraction, sim.HitRate)
				for _, c := range sim.Clients {
					fmt.Printf("    client %-12s %.2f GB/s, mean %.0f ns, p99 %.0f ns, fifo %d\n",
						c.Name, c.AchievedGBps, c.MeanNs, c.P99Ns, c.MaxFIFODepth)
				}
			}
		case "sram":
			fmt.Printf("level %s: SRAM — %.3f mm², %.2f ns access, %.2f mW standby\n",
				l.Name, l.SRAMAreaMm2, l.SRAMAccessNs, l.SRAMStandbyMW)
		}
	}
}

// validateCorpus loads and compiles every *.json scenario under dir —
// the `make scenarios` corpus gate. All failures are reported, not
// just the first.
func validateCorpus(dir string) {
	files, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		fail(err)
	}
	if len(files) == 0 {
		fail(fmt.Errorf("no *.json scenarios under %s", dir))
	}
	sort.Strings(files)
	failures := 0
	for _, f := range files {
		scn, err := scenario.Load(f)
		if err == nil {
			_, err = scn.Compile()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "edramx: %s: %v\n", f, err)
			failures++
			continue
		}
		fmt.Printf("ok %s (%s)\n", f, scn.Name)
	}
	if failures > 0 {
		fail(fmt.Errorf("%d of %d scenarios invalid", failures, len(files)))
	}
	fmt.Printf("%d scenarios valid\n", len(files))
}

// progressLine is the stderr progress reporter shared by the table and
// JSON paths.
func progressLine(s core.ExploreStats) {
	fmt.Fprintf(os.Stderr, "\rexplore: %d points (%d built, %d infeasible, %d pruned", s.Enumerated, s.Built, s.Infeasible, s.Pruned)
	if s.Skipped > 0 {
		fmt.Fprintf(os.Stderr, ", %d skipped", s.Skipped)
	}
	fmt.Fprintf(os.Stderr, ") front=%d %.0f pts/s", s.FrontSize, s.PointsPerSec())
	if s.Done {
		fmt.Fprintf(os.Stderr, " [%d workers, %.1f ms]\n", s.Workers, float64(s.WallTime.Microseconds())/1e3)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "edramx:", err)
	os.Exit(1)
}
