// Command memsim runs a multi-client memory-system simulation on an
// embedded DRAM macro: it builds the macro, attaches a latency-sensitive
// streaming client plus a configurable number of random bulk clients,
// and reports sustained bandwidth, page-hit rate, per-client latency
// percentiles and required FIFO depths for the chosen mapping and
// arbitration policy.
//
// With -faults the run injects a seeded manufacturing defect map,
// retention-time tail and transient soft errors, protects the interface
// with the selected -ecc scheme, and reports the reliability ladder's
// counters (corrections, retries, spare-row remaps, offlined pages).
//
// Usage:
//
//	memsim -capacity 16 -iface 64 -banks 4 -mapping interleaved -policy open-page -clients 3
//	memsim -faults 4 -ecc secded -soft-errors 2000 -seed 7
//	memsim -scenario examples/scenarios/mpeg2-pal-decoder.json
//
// -scenario simulates the target level of a declarative scenario file
// (see internal/scenario): the document's pinned macro geometry,
// arbitration policy and client allocation replace the corresponding
// flags, through the same loader as edramd and edramx.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"edram/internal/edram"
	"edram/internal/mapping"
	"edram/internal/profiling"
	"edram/internal/reliab"
	"edram/internal/report"
	"edram/internal/scenario"
	"edram/internal/sched"
	"edram/internal/traffic"
)

// traceW is the streaming trace sink; fail flushes it so early errors
// don't lose the rows already observed.
var traceW *bufio.Writer

func main() {
	capacity := flag.Int("capacity", 16, "macro capacity in Mbit")
	iface := flag.Int("iface", 64, "interface width in bits")
	banks := flag.Int("banks", 4, "bank count")
	page := flag.Int("page", 2048, "page length in bits")
	mapName := flag.String("mapping", "interleaved", "address mapping: linear or interleaved")
	polName := flag.String("policy", "round-robin", "arbitration: round-robin, priority, oldest, open-page")
	nClients := flag.Int("clients", 3, "number of random bulk clients (plus one stream client)")
	rate := flag.Float64("rate", 0.6, "per-client demand in GB/s")
	requests := flag.Int("requests", 1500, "requests per client")
	seed := flag.Int64("seed", 42, "random seed (traffic and fault injection)")
	closedPage := flag.Bool("closedpage", false, "auto-precharge after every request")
	reorder := flag.Int("window", 1, "FR-FCFS reorder window (open-page policy only)")
	tracePath := flag.String("trace", "", "stream a per-request CSV trace to this file (\"-\" = stderr)")
	faults := flag.Float64("faults", 0, "inject faults: mean manufacturing defects per bank (0 = fault-free)")
	eccName := flag.String("ecc", "", "ECC scheme: none, parity, secded, chipkill (default secded when -faults is set; requires -faults)")
	softErrs := flag.Float64("soft-errors", 0, "transient bit flips per million accesses (requires -faults)")
	spares := flag.Int("spares", 4, "spare rows per bank for runtime repair (with -faults)")
	weakCells := flag.Float64("weak-cells", 8, "mean retention-tail weak cells per bank (with -faults)")
	scenFile := flag.String("scenario", "", "simulate a declarative scenario file's target level (overrides the geometry, policy and client flags)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the simulation to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	stopProf, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		fail(err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fail(err)
		}
	}()

	// Flag-combination validation: the reliability knobs only mean
	// something once the fault process is armed.
	if *faults < 0 {
		usageFail(fmt.Errorf("-faults must be non-negative, got %g", *faults))
	}
	if *faults == 0 {
		if *eccName != "" {
			usageFail(fmt.Errorf("-ecc %q requires -faults (an ECC needs a fault process to act on)", *eccName))
		}
		if *softErrs != 0 {
			usageFail(fmt.Errorf("-soft-errors requires -faults"))
		}
	}
	ecc := reliab.ECCSECDED // default protection once faults are armed
	if *eccName != "" {
		var err error
		if ecc, err = reliab.ParseECC(*eccName); err != nil {
			usageFail(err)
		}
	}

	// A scenario file overrides the geometry, policy and client flags:
	// the document's target level (its pinned spec plus its allocated
	// clients) is what gets simulated, through the same loader — and so
	// with the same error messages — as edramd and edramx.
	var scnLevel *scenario.CompiledLevel
	var scnCompiled *scenario.Compiled
	if *scenFile != "" {
		scn, err := scenario.Load(*scenFile)
		if err != nil {
			fail(err)
		}
		scnCompiled, err = scn.Compile()
		if err != nil {
			fail(err)
		}
		scnLevel, err = scnCompiled.TargetLevel()
		if err != nil {
			fail(err)
		}
		if len(scnLevel.Clients) == 0 {
			fail(fmt.Errorf("scenario level %q has no clients to simulate", scnLevel.Name))
		}
	}

	spec := edram.Spec{
		CapacityMbit: *capacity, InterfaceBits: *iface, Banks: *banks, PageBits: *page,
	}
	if scnLevel != nil {
		spec = scnLevel.Spec
	}
	if *faults > 0 {
		spec.ECC = ecc
		spec.Redundancy = edram.RedundancyStd
	}
	m, err := edram.Build(spec)
	if err != nil {
		fail(err)
	}
	cfg := m.DeviceConfig()
	gm := mapping.Geometry{Banks: cfg.Banks, RowsBank: cfg.RowsPerBank, PageBytes: cfg.PageBits / 8}

	var mp mapping.Mapping
	switch *mapName {
	case "linear":
		mp, err = mapping.NewLinear(gm)
	case "interleaved":
		mp, err = mapping.NewBankInterleaved(gm)
	default:
		usageFail(fmt.Errorf("unknown mapping %q", *mapName))
	}
	if err != nil {
		fail(err)
	}

	// The policy vocabulary is scenario.ParsePolicy's — the same names
	// (and the same error message) the scenario documents and the
	// service accept. The historical short aliases keep working because
	// ParsePolicy accepts both spellings.
	pol, err := scenario.ParsePolicy(*polName)
	if err != nil {
		usageFail(err)
	}

	var clients []sched.Client
	closed, window := *closedPage, *reorder
	if scnLevel != nil {
		pol = scnCompiled.Policy
		closed = scnCompiled.ClosedPage
		window = scnCompiled.ReorderWindow
		for i, c := range scnLevel.Clients {
			clients = append(clients, sched.Client{
				Name:            c.Name,
				Gen:             c.Generator(i, m.Geometry.InterfaceBits),
				LatencyBudgetNs: c.LatencyBudgetNs,
			})
		}
	} else {
		clients = []sched.Client{{Name: "stream", Gen: &traffic.Sequential{
			ClientID: 0, Bits: *iface, RateGB: *rate, Count: *requests}}}
		span := int64(*capacity) << 20 / 8 / int64(*nClients+1)
		for i := 0; i < *nClients; i++ {
			clients = append(clients, sched.Client{
				Name: fmt.Sprintf("rand-%d", i),
				Gen: &traffic.Random{
					ClientID: i + 1, StartB: span * int64(i+1), WindowB: span,
					Bits: *iface, RateGB: *rate, Count: *requests,
					Rng: rand.New(rand.NewSource(*seed + int64(i))),
				},
			})
		}
	}

	// The per-event Observer streams the request-level trace while the
	// simulation runs, instead of buffering it in Result.Trace; "-"
	// dumps to stderr alongside the progress of long runs.
	opt := sched.Options{Policy: pol, ClosedPage: closed, ReorderWindow: window}
	traced := 0
	if *tracePath != "" {
		var dst *os.File
		if *tracePath == "-" {
			dst = os.Stderr
		} else {
			f, err := os.Create(*tracePath)
			if err != nil {
				fail(err)
			}
			defer f.Close()
			dst = f
		}
		traceW = bufio.NewWriter(dst)
		if _, err := traceW.WriteString("client,addr,bank,row,write,issue_ns,start_ns,done_ns,hit\n"); err != nil {
			fail(err)
		}
		opt.Observer = func(e sched.TraceEntry) {
			traced++
			fmt.Fprintf(traceW, "%s,%d,%d,%d,%t,%.1f,%.1f,%.1f,%t\n",
				e.Client, e.AddrB, e.Bank, e.Row, e.Write, e.IssueNs, e.StartNs, e.DoneNs, e.Hit)
		}
	}
	if *faults > 0 {
		opt.Reliability = &reliab.Config{
			Seed:                 *seed,
			ECC:                  ecc,
			MeanDefectsPerBank:   *faults,
			RetentionTailPerBank: *weakCells,
			SoftErrorsPerMAccess: *softErrs,
			SpareRowsPerBank:     *spares,
		}
		// Runtime error events stream to stderr as they happen — the
		// reliability counterpart of the -trace observer.
		opt.FaultObserver = func(ev reliab.FaultEvent) {
			fmt.Fprintf(os.Stderr, "fault @%.1fns client=%s bank=%d row=%d hard=%d soft=%d attempts=%d -> %s\n",
				ev.TimeNs, ev.Client, ev.Bank, ev.Row, ev.HardBits, ev.SoftBits, ev.Attempts, ev.Outcome)
		}
	}
	res, err := sched.RunWithOptions(cfg, mp, opt, clients)
	if err != nil {
		fail(err)
	}
	if traceW != nil {
		if err := traceW.Flush(); err != nil {
			fail(err)
		}
		if *tracePath != "-" {
			fmt.Fprintf(os.Stderr, "trace: %d requests -> %s\n", traced, *tracePath)
		}
	}

	fmt.Print(m.Datasheet())
	fmt.Printf("\nsimulation: %s mapping, %s policy, %d clients\n",
		res.MappingName, res.Policy, len(res.Clients))
	fmt.Printf("  peak       %.2f GB/s\n", res.PeakGBps)
	fmt.Printf("  sustained  %.2f GB/s (%.0f%% of peak)\n", res.SustainedGBps, 100*res.SustainedFraction)
	fmt.Printf("  hit rate   %.2f\n", res.HitRate)
	fmt.Printf("  makespan   %.2f us\n\n", res.DurationNs/1e3)

	t := report.New("per-client service", "client", "req", "mean ns", "p99 ns", "max ns", "fifo", "GB/s")
	for i, c := range res.Clients {
		clientRate := *rate
		if scnLevel != nil {
			clientRate = scnLevel.Clients[i].RateGBps
		}
		depth := traffic.FIFODepthFor(c.Stats.MaxNs, m.Geometry.InterfaceBits, clientRate)
		t.AddRow(c.Name, c.Stats.Count, c.Stats.MeanNs, c.Stats.P99Ns, c.Stats.MaxNs, depth, c.AchievedGBps)
	}
	if err := t.Render(os.Stdout); err != nil {
		fail(err)
	}

	if rs := res.Reliability; rs != nil {
		fmt.Printf("\nreliability: %s ECC, seed %d, defect map %016x\n", ecc, *seed, rs.DefectFingerprint)
		fmt.Printf("  injected   %d faults, %d weak cells\n", rs.InjectedFaults, rs.WeakCells)
		fmt.Printf("  faulty acc %d of %d (corrected %d, retry-recovered %d, silent %d, miscorrected %d, uncorrected %d)\n",
			rs.FaultyAccesses, res.Device.Accesses(), rs.Corrected, rs.RetryRecovered, rs.Silent, rs.Miscorrected, rs.Uncorrected)
		fmt.Printf("  repair     %d retries, %d scrubs, %d/%d spares used, %d rows offlined (%.3f%% capacity lost)\n",
			rs.Retries, rs.Scrubs, rs.SparesUsed, rs.SparesTotal, rs.OfflinedRows, 100*rs.CapacityLossFrac)
		fmt.Printf("  overhead   decode %.1f ns, retry %.1f ns, scrub %.1f ns stolen\n",
			rs.DecodeNs, rs.RetryNs, rs.ScrubNs)
		const maxOffline = 8
		for i, p := range res.Offlined {
			if i == maxOffline {
				fmt.Printf("  offline    ... and %d more\n", len(res.Offlined)-maxOffline)
				break
			}
			fmt.Printf("  offline    bank %d row %d\n", p[0], p[1])
		}
	}
}

// fail reports a runtime error, flushing any streaming trace first so
// partial traces survive early exits.
func fail(err error) {
	if traceW != nil {
		traceW.Flush()
	}
	fmt.Fprintln(os.Stderr, "memsim:", err)
	os.Exit(1)
}

// usageFail reports an invalid flag combination with the usage text and
// a distinct exit code.
func usageFail(err error) {
	fmt.Fprintln(os.Stderr, "memsim:", err)
	flag.Usage()
	os.Exit(2)
}
