// Command memsim runs a multi-client memory-system simulation on an
// embedded DRAM macro: it builds the macro, attaches a latency-sensitive
// streaming client plus a configurable number of random bulk clients,
// and reports sustained bandwidth, page-hit rate, per-client latency
// percentiles and required FIFO depths for the chosen mapping and
// arbitration policy.
//
// Usage:
//
//	memsim -capacity 16 -iface 64 -banks 4 -mapping interleaved -policy open-page -clients 3
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"edram/internal/edram"
	"edram/internal/mapping"
	"edram/internal/report"
	"edram/internal/sched"
	"edram/internal/traffic"
)

func main() {
	capacity := flag.Int("capacity", 16, "macro capacity in Mbit")
	iface := flag.Int("iface", 64, "interface width in bits")
	banks := flag.Int("banks", 4, "bank count")
	page := flag.Int("page", 2048, "page length in bits")
	mapName := flag.String("mapping", "interleaved", "address mapping: linear or interleaved")
	polName := flag.String("policy", "round-robin", "arbitration: round-robin, priority, oldest, open-page")
	nClients := flag.Int("clients", 3, "number of random bulk clients (plus one stream client)")
	rate := flag.Float64("rate", 0.6, "per-client demand in GB/s")
	requests := flag.Int("requests", 1500, "requests per client")
	seed := flag.Int64("seed", 42, "random seed")
	closedPage := flag.Bool("closedpage", false, "auto-precharge after every request")
	reorder := flag.Int("window", 1, "FR-FCFS reorder window (open-page policy only)")
	tracePath := flag.String("trace", "", "stream a per-request CSV trace to this file (\"-\" = stderr)")
	flag.Parse()

	m, err := edram.Build(edram.Spec{
		CapacityMbit: *capacity, InterfaceBits: *iface, Banks: *banks, PageBits: *page,
	})
	if err != nil {
		fail(err)
	}
	cfg := m.DeviceConfig()
	gm := mapping.Geometry{Banks: cfg.Banks, RowsBank: cfg.RowsPerBank, PageBytes: cfg.PageBits / 8}

	var mp mapping.Mapping
	switch *mapName {
	case "linear":
		mp, err = mapping.NewLinear(gm)
	case "interleaved":
		mp, err = mapping.NewBankInterleaved(gm)
	default:
		fail(fmt.Errorf("unknown mapping %q", *mapName))
	}
	if err != nil {
		fail(err)
	}

	var pol sched.Policy
	switch *polName {
	case "round-robin":
		pol = sched.RoundRobin
	case "priority":
		pol = sched.FixedPriority
	case "oldest":
		pol = sched.OldestFirst
	case "open-page":
		pol = sched.OpenPageFirst
	default:
		fail(fmt.Errorf("unknown policy %q", *polName))
	}

	clients := []sched.Client{{Name: "stream", Gen: &traffic.Sequential{
		ClientID: 0, Bits: *iface, RateGB: *rate, Count: *requests}}}
	window := int64(*capacity) << 20 / 8 / int64(*nClients+1)
	for i := 0; i < *nClients; i++ {
		clients = append(clients, sched.Client{
			Name: fmt.Sprintf("rand-%d", i),
			Gen: &traffic.Random{
				ClientID: i + 1, StartB: window * int64(i+1), WindowB: window,
				Bits: *iface, RateGB: *rate, Count: *requests,
				Rng: rand.New(rand.NewSource(*seed + int64(i))),
			},
		})
	}

	// The per-event Observer streams the request-level trace while the
	// simulation runs, instead of buffering it in Result.Trace; "-"
	// dumps to stderr alongside the progress of long runs.
	opt := sched.Options{Policy: pol, ClosedPage: *closedPage, ReorderWindow: *reorder}
	var traceW *bufio.Writer
	traced := 0
	if *tracePath != "" {
		var dst *os.File
		if *tracePath == "-" {
			dst = os.Stderr
		} else {
			f, err := os.Create(*tracePath)
			if err != nil {
				fail(err)
			}
			defer f.Close()
			dst = f
		}
		traceW = bufio.NewWriter(dst)
		if _, err := traceW.WriteString("client,addr,bank,row,write,issue_ns,start_ns,done_ns,hit\n"); err != nil {
			fail(err)
		}
		opt.Observer = func(e sched.TraceEntry) {
			traced++
			fmt.Fprintf(traceW, "%s,%d,%d,%d,%t,%.1f,%.1f,%.1f,%t\n",
				e.Client, e.AddrB, e.Bank, e.Row, e.Write, e.IssueNs, e.StartNs, e.DoneNs, e.Hit)
		}
	}
	res, err := sched.RunWithOptions(cfg, mp, opt, clients)
	if err != nil {
		fail(err)
	}
	if traceW != nil {
		if err := traceW.Flush(); err != nil {
			fail(err)
		}
		if *tracePath != "-" {
			fmt.Fprintf(os.Stderr, "trace: %d requests -> %s\n", traced, *tracePath)
		}
	}

	fmt.Print(m.Datasheet())
	fmt.Printf("\nsimulation: %s mapping, %s policy, %d clients\n",
		res.MappingName, res.Policy, len(res.Clients))
	fmt.Printf("  peak       %.2f GB/s\n", res.PeakGBps)
	fmt.Printf("  sustained  %.2f GB/s (%.0f%% of peak)\n", res.SustainedGBps, 100*res.SustainedFraction)
	fmt.Printf("  hit rate   %.2f\n", res.HitRate)
	fmt.Printf("  makespan   %.2f us\n\n", res.DurationNs/1e3)

	t := report.New("per-client service", "client", "req", "mean ns", "p99 ns", "max ns", "fifo", "GB/s")
	for _, c := range res.Clients {
		depth := traffic.FIFODepthFor(c.Stats.MaxNs, *iface, *rate)
		t.AddRow(c.Name, c.Stats.Count, c.Stats.MeanNs, c.Stats.P99Ns, c.Stats.MaxNs, depth, c.AchievedGBps)
	}
	if err := t.Render(os.Stdout); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "memsim:", err)
	os.Exit(1)
}
