// Networkswitch: the paper's high-end eDRAM market (§2) — a shared
// packet buffer for a multi-port switch. Builds a 128-Mbit macro with a
// 512-bit interface, drives it with per-port enqueue/dequeue streams,
// and reports whether the sustained bandwidth covers the aggregate line
// rate; then shows the discrete alternative's cost in chips and pins.
//
//	go run ./examples/networkswitch
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	"edram/internal/edram"
	"edram/internal/mapping"
	"edram/internal/report"
	"edram/internal/sched"
	"edram/internal/sdram"
	"edram/internal/traffic"
	"edram/internal/units"
)

func main() {
	const ports = 8
	const lineRateGBps = 0.3 // ~2.4 Gbit/s per port, full duplex

	// The shared buffer: paper §2 quotes up to 128 Mbit and 512-bit
	// interfaces for switches.
	m, err := edram.Build(edram.Spec{
		CapacityMbit:  128,
		InterfaceBits: 512,
		Banks:         8,
		Redundancy:    edram.RedundancyStd,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(m.Datasheet())

	aggregate := 2 * ports * lineRateGBps // in + out per port
	fmt.Printf("\naggregate line rate: %.1f GB/s over %d full-duplex ports\n", aggregate, ports)
	if m.PeakBandwidthGBps() < aggregate {
		fmt.Println("WARNING: peak below aggregate line rate")
	}

	// Per-port clients: enqueue writes a cell-sized burst to the port's
	// region; dequeue reads from a random queued position (head drops
	// land anywhere after scheduling).
	cfg := m.DeviceConfig()
	gm := mapping.Geometry{Banks: cfg.Banks, RowsBank: cfg.RowsPerBank, PageBytes: cfg.PageBits / 8}
	mp, err := mapping.NewBankInterleaved(gm)
	if err != nil {
		log.Fatal(err)
	}
	region := int64(128) * units.Mbit / 8 / ports
	var clients []sched.Client
	const cellBits = 512 // one 64-byte cell per access on the 512-bit bus
	for p := 0; p < ports; p++ {
		base := region * int64(p)
		clients = append(clients,
			sched.Client{Name: fmt.Sprintf("in-%d", p), Gen: &traffic.Sequential{
				ClientID: 2 * p, StartB: base, LimitB: region, Bits: cellBits,
				Write: true, RateGB: lineRateGBps, Count: 400,
			}},
			sched.Client{Name: fmt.Sprintf("out-%d", p), Gen: &traffic.Random{
				ClientID: 2*p + 1, StartB: base, WindowB: region, Bits: cellBits,
				RateGB: lineRateGBps, Count: 400,
				Rng: rand.New(rand.NewSource(int64(100 + p))),
			}},
		)
	}
	res, err := sched.RunWithOptions(cfg, mp, sched.Options{Policy: sched.OpenPageFirst}, clients)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated: sustained %.2f GB/s (%.0f%% of peak), hit rate %.2f\n",
		res.SustainedGBps, 100*res.SustainedFraction, res.HitRate)
	worstP99 := 0.0
	for _, c := range res.Clients {
		if c.Stats.P99Ns > worstP99 {
			worstP99 = c.Stats.P99Ns
		}
	}
	fmt.Printf("worst port p99 latency: %.0f ns => FIFO depth %d cells\n\n",
		worstP99, traffic.FIFODepthFor(worstP99, cellBits, lineRateGBps))

	// The discrete alternative.
	t := report.New("discrete alternative (64-Mbit x16 parts)",
		"metric", "discrete", "embedded")
	sys, err := sdram.BestSystem(sdram.Requirement{CapacityMbit: 128, WidthBits: 512})
	if err != nil {
		log.Fatal(err)
	}
	t.AddRow("memory chips", sys.TotalChips(), 0)
	t.AddRow("installed Mbit", sys.InstalledMbit(), m.CapacityMbit())
	t.AddRow("board signal pins", sys.SignalPins(), 0)
	t.AddRow("peak GB/s", sys.PeakBandwidthGBps(), m.PeakBandwidthGBps())
	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
