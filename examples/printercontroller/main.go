// Printercontroller: the paper's second controller market (§2) — a page
// printer whose band buffers live in eDRAM. The print engine is a hard
// real-time client (a band underrun ruins the page), so the controller
// uses the earliest-deadline-first arbiter while rasterization and host
// I/O run best-effort.
//
//	go run ./examples/printercontroller
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	"edram/internal/edram"
	"edram/internal/mapping"
	"edram/internal/report"
	"edram/internal/sched"
	"edram/internal/traffic"
)

func main() {
	// 600-dpi A4 mono page = ~33.6 Mbit; band buffering needs only a
	// few bands plus the compressed page description, so an 8-Mbit
	// macro suffices — exactly the §2 system-cost argument.
	m, err := edram.Build(edram.Spec{CapacityMbit: 8, InterfaceBits: 64, Redundancy: edram.RedundancyLow})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(m.Datasheet())
	fmt.Println()

	cfg := m.DeviceConfig()
	gm := mapping.Geometry{Banks: cfg.Banks, RowsBank: cfg.RowsPerBank, PageBytes: cfg.PageBits / 8}
	mp, err := mapping.NewBankInterleaved(gm)
	if err != nil {
		log.Fatal(err)
	}

	mk := func() []sched.Client {
		return []sched.Client{
			// The print engine drains bands at the mechanical speed of
			// the drum: hard deadline per fetch.
			{Name: "engine", LatencyBudgetNs: 300, Gen: &traffic.Sequential{
				ClientID: 0, StartB: 0, LimitB: 512 << 10, Bits: 64, RateGB: 0.4, Count: 1500}},
			// The rasterizer writes the next band (bursty).
			{Name: "raster", Gen: &traffic.Sequential{
				ClientID: 1, StartB: 512 << 10, LimitB: 512 << 10, Bits: 64,
				Write: true, RateGB: 0.8, Count: 1500}},
			// The host interface decompresses the page description.
			{Name: "host", Gen: &traffic.Random{
				ClientID: 2, StartB: 1 << 20, WindowB: 2 << 20, Bits: 64,
				RateGB: 0.6, Count: 1500, Rng: rand.New(rand.NewSource(3))}},
		}
	}

	t := report.New("arbitration for the print engine (hard real-time)",
		"policy", "engine p99 ns", "engine max ns", "fifo slots", "total GB/s")
	for _, pol := range []sched.Policy{sched.RoundRobin, sched.Deadline} {
		res, err := sched.RunWithOptions(cfg, mp, sched.Options{Policy: pol}, mk())
		if err != nil {
			log.Fatal(err)
		}
		st := res.Clients[0].Stats
		t.AddRow(pol.String(), st.P99Ns, st.MaxNs,
			traffic.FIFODepthFor(st.MaxNs, 64, 0.4), res.SustainedGBps)
	}
	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nthe deadline arbiter keeps the engine's FIFO a handful of slots deep —")
	fmt.Println("the paper's §3 point that the access scheme sets the necessary FIFO depth.")
}
