// Videoframestore: the paper's graphics/video motivation. Sizes a frame
// store for PAL and NTSC, shows the commodity granularity waste against
// an exact-fit eDRAM macro, and compares linear versus tiled 2-D frame
// mappings under motion-compensation traffic.
//
//	go run ./examples/videoframestore
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	"edram/internal/edram"
	"edram/internal/mapping"
	"edram/internal/mpeg2"
	"edram/internal/report"
	"edram/internal/sched"
	"edram/internal/sdram"
	"edram/internal/traffic"
)

func main() {
	// Frame-store sizing: three frames (double buffer + composition).
	t := report.New("frame store sizing (3 frames, 4:2:0)",
		"format", "frame Mbit", "need Mbit", "commodity Mbit", "edram Mbit", "waste saved")
	for _, f := range []mpeg2.Format{mpeg2.PAL(), mpeg2.NTSC()} {
		need := 3 * f.FrameMbit()
		commodity := 0
		for _, s := range mpeg2.CommoditySizesMbit() {
			if float64(s) >= need {
				commodity = s
				break
			}
		}
		edramFit := int(need)
		if float64(edramFit) < need {
			edramFit++
		}
		t.AddRow(f.Name, f.FrameMbit(), need, commodity, edramFit, float64(commodity-edramFit))
	}
	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// The discrete alternative would also pay the width problem:
	part := sdram.Catalog()[0]
	sys, err := sdram.Compose(part, sdram.Requirement{CapacityMbit: 15, WidthBits: 128})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndiscrete 128-bit frame store: %d chips, %d Mbit installed, %d board pins\n",
		sys.TotalChips(), sys.InstalledMbit(), sys.SignalPins())

	// Mapping study: motion-compensation blocks on a 16-Mbit macro,
	// linear vs tiled 2-D mapping.
	m, err := edram.Build(edram.Spec{CapacityMbit: 16, InterfaceBits: 64, PageBits: 2048})
	if err != nil {
		log.Fatal(err)
	}
	cfg := m.DeviceConfig()
	cfg.AutoRefresh = false
	gm := mapping.Geometry{Banks: cfg.Banks, RowsBank: cfg.RowsPerBank, PageBytes: cfg.PageBits / 8}
	pal := mpeg2.PAL()

	lin, err := mapping.NewLinear(gm)
	if err != nil {
		log.Fatal(err)
	}
	tiled, err := mapping.NewTiled2D(gm, int64(pal.Width), 16) // 16-byte x 16-line tiles
	if err != nil {
		log.Fatal(err)
	}

	mc := func(seed int64) []sched.Client {
		return []sched.Client{{Name: "mc", Gen: &traffic.Block2D{
			ClientID: 0, PitchB: int64(pal.Width), Lines: pal.Height,
			BlockW: 16, BlockH: 16, RateGB: 0.5, Blocks: 1500,
			Rng: rand.New(rand.NewSource(seed)),
		}}}
	}
	fmt.Println()
	mt := report.New("motion-compensation traffic vs frame mapping",
		"mapping", "hit rate", "sustained GB/s", "p99 ns")
	for _, mp := range []mapping.Mapping{lin, tiled} {
		res, err := sched.RunWithOptions(cfg, mp, sched.Options{Policy: sched.RoundRobin}, mc(9))
		if err != nil {
			log.Fatal(err)
		}
		mt.AddRow(mp.Name(), res.HitRate, res.SustainedGBps, res.Clients[0].Stats.P99Ns)
	}
	if err := mt.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
