// Diskcontroller: the paper's embedded-processor market (§2) — a
// hard-disk controller whose CPU keeps program, cache tables and sector
// buffers in memory. Compares the conventional build (CPU + caches +
// external SDRAM) against the merged processor-eDRAM build (§4.2) on
// the same firmware-like workload: CPI, memory latency, bandwidth and
// energy.
//
//	go run ./examples/diskcontroller
package main

import (
	"fmt"
	"log"
	"os"

	"edram/internal/edram"
	"edram/internal/iram"
	"edram/internal/report"
)

func main() {
	// The controller needs ~20 Mbit (firmware + cache tables + sector
	// buffers): an exact-fit embedded macro.
	m, err := edram.Build(edram.Spec{CapacityMbit: 20, InterfaceBits: 128})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(m.Datasheet())
	fmt.Println()

	metrics, err := iram.Compare(300000, 3)
	if err != nil {
		log.Fatal(err)
	}

	conv, merged := iram.Conventional(), iram.Merged()
	t := report.New("conventional vs merged controller", "metric", "conventional", "merged", "ratio")
	t.AddRow("cpu clock MHz", conv.CPU.ClockMHz, merged.CPU.ClockMHz,
		conv.CPU.ClockMHz/merged.CPU.ClockMHz)
	t.AddRow("memory latency ns", conv.MemLatencyNs, merged.MemLatencyNs, metrics.LatencyRatio)
	t.AddRow("memory peak GB/s", conv.MemPeakGBps, merged.MemPeakGBps, metrics.BandwidthRatio)
	t.AddRow("CPI", metrics.ConvCPI, metrics.IRAMCPI, metrics.ConvCPI/metrics.IRAMCPI)
	t.AddRow("MIPS", metrics.Conventional.CPU.MIPS, metrics.IRAM.CPU.MIPS,
		metrics.IRAM.CPU.MIPS/metrics.Conventional.CPU.MIPS)
	t.AddRow("mem energy pJ/ref", metrics.Conventional.EnergyPJPerMemRef,
		metrics.IRAM.EnergyPJPerMemRef, metrics.EnergyRatio)
	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\npaper §4.2 expectation: latency 5-10x, bandwidth 50-100x, energy 2-4x\n")
	fmt.Printf("measured:               latency %.1fx, bandwidth %.0fx, energy %.1fx\n",
		metrics.LatencyRatio, metrics.BandwidthRatio, metrics.EnergyRatio)
}
