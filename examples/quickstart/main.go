// Quickstart: build an embedded DRAM macro, print its datasheet and
// power report, and run a short two-client traffic simulation on it.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"edram/internal/edram"
	"edram/internal/mapping"
	"edram/internal/power"
	"edram/internal/sched"
	"edram/internal/tech"
	"edram/internal/traffic"
)

func main() {
	// 1. Specify and build the macro: 16 Mbit, 256-bit interface,
	//    standard redundancy. Everything else is derived.
	m, err := edram.Build(edram.Spec{
		CapacityMbit:  16,
		InterfaceBits: 256,
		Redundancy:    edram.RedundancyStd,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(m.Datasheet())

	// 2. Power at a realistic operating point.
	pr := m.Power(tech.DefaultElectrical(), power.DefaultCoreEnergy(), 0.5, 0.8)
	fmt.Printf("\npower @ 50%% utilization, 80%% hit rate: %.0f mW "+
		"(interface %.0f, activate %.0f, column %.0f, refresh %.2f, standby %.1f)\n",
		pr.TotalMW, pr.InterfaceMW, pr.ActivateMW, pr.ColumnMW, pr.RefreshMW, pr.StandbyMW)

	// 3. Simulate a streaming client plus a random client.
	cfg := m.DeviceConfig()
	gm := mapping.Geometry{Banks: cfg.Banks, RowsBank: cfg.RowsPerBank, PageBytes: cfg.PageBits / 8}
	mp, err := mapping.NewBankInterleaved(gm)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sched.RunWithOptions(cfg, mp, sched.Options{Policy: sched.OpenPageFirst}, []sched.Client{
		{Name: "stream", Gen: &traffic.Sequential{ClientID: 0, Bits: 256, RateGB: 2, Count: 2000}},
		{Name: "random", Gen: &traffic.Random{ClientID: 1, StartB: 1 << 20, WindowB: 1 << 20,
			Bits: 256, RateGB: 1, Count: 1000, Rng: rand.New(rand.NewSource(1))}},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntraffic sim: sustained %.2f GB/s of %.2f peak (%.0f%%), hit rate %.2f\n",
		res.SustainedGBps, res.PeakGBps, 100*res.SustainedFraction, res.HitRate)
	for _, c := range res.Clients {
		fmt.Printf("  %-7s %s\n", c.Name, c.Stats)
	}
}
