// Graphicsaccel: the paper's first eDRAM conquest (§2, 3-D graphics for
// laptops). This example ties three of the architectural levers
// together for one product:
//
//  1. SRAM/DRAM partitioning (§3): texture cache in SRAM, frame/z
//     buffers in eDRAM — found by the partition sweep.
//
//  2. Quality grades (§6): frame-buffer dies that would fail program
//     grade still sell as graphics grade.
//
//  3. Thermal feedback (§1): the rendering logic heats the die; the
//     macro's refresh pays for it.
//
//     go run ./examples/graphicsaccel
package main

import (
	"fmt"
	"log"
	"os"

	"edram/internal/edram"
	"edram/internal/geom"
	"edram/internal/power"
	"edram/internal/report"
	"edram/internal/sram"
	"edram/internal/tech"
	"edram/internal/timing"
	"edram/internal/units"
	"edram/internal/yield"
)

func main() {
	proc := tech.Siemens024()

	// 1. Partition the accelerator's memories: texture cache (256 Kbit)
	//    and frame store (12 Mbit: double-buffered 800x600x16 + z).
	dramModel := func(mbit float64) (float64, float64, error) {
		bits := int(mbit * units.Mbit)
		blocks := units.CeilDiv(bits, geom.Block256K)
		g := geom.MacroGeometry{
			Process: proc, BlockBits: geom.Block256K, Blocks: blocks, Banks: 1,
			PageBits: 512, InterfaceBits: 64, WithBIST: true,
		}
		a, err := g.Area()
		if err != nil {
			return 0, 0, err
		}
		tm, err := timing.ArrayTiming(tech.PC100(), timing.Organization{PageBits: 512, RowsPerBank: 512})
		if err != nil {
			return 0, 0, err
		}
		return a.TotalMm2, tm.TRCDns + tm.TCASns, nil
	}
	rows, crossover, err := sram.Partition(proc, []float64{0.0625, 0.125, 0.25, 0.5, 1, 2, 4, 12}, dramModel)
	if err != nil {
		log.Fatal(err)
	}
	pt := report.New("memory partitioning (SRAM below the crossover, eDRAM above)",
		"Mbit", "sram mm2", "edram mm2", "winner")
	for _, r := range rows {
		winner := "edram"
		if r.SRAMWins {
			winner = "sram"
		}
		pt.AddRow(r.CapacityMbit, r.SRAMAreaMm2, r.DRAMAreaMm2, winner)
	}
	if err := pt.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("crossover at %.2f Mbit => texture cache (0.25 Mbit) in SRAM, frame store (12 Mbit) in eDRAM\n\n", crossover)

	// 2. The frame-store macro.
	m, err := edram.Build(edram.Spec{CapacityMbit: 12, InterfaceBits: 128, Redundancy: edram.RedundancyLow})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(m.Datasheet())

	// 3. Graded yield: frame buffers tolerate a few weak cells.
	mc := yield.MonteCarlo{
		Rows: 512, Cols: 512,
		MeanDefectsPerBlock: 2.5,
		SpareRows:           2, SpareCols: 2,
		Mix: yield.DefectMix{CellFrac: 0.3, RowFrac: 0.05, ColFrac: 0.05, RetentionFrac: 0.6},
	}
	gr, err := mc.RunGraded(400, 13, 6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nblock yield: program grade %.2f, graphics grade %.2f (%.1f%% extra good dies)\n",
		gr.ProgramYield, gr.GraphicsYield, 100*(gr.GraphicsYield-gr.ProgramYield))

	// 4. Thermal operating point with 1.5 W of rendering logic.
	rep, err := m.PowerAtThermalEquilibrium(tech.DefaultElectrical(), power.DefaultCoreEnergy(),
		power.DefaultThermal(), 0.6, 0.85, 1500)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nthermal equilibrium with 1.5 W rendering logic:\n")
	fmt.Printf("  junction %.0f C, retention %.1f ms, refresh %.1f mW (%.1fx nominal)\n",
		rep.JunctionC, rep.RetentionMs, rep.Power.RefreshMW, rep.RefreshPenalty)
}
