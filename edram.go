package edram

// This file is the public facade of the module: the stable entry points
// a downstream user needs, re-exported from the internal packages (which
// are not importable outside this module). The facade covers the three
// workflows the paper's reproduction supports:
//
//  1. Build an embedded macro and read its views (BuildMacro, Views).
//  2. Explore the design space and get quantized recommendations
//     (ExploreContext, RecommendContext; Explore and Recommend remain
//     as serial compatibility wrappers).
//  3. Simulate a multi-client memory system on a macro (Simulate).

import (
	"context"

	"edram/internal/core"
	iedram "edram/internal/edram"
	"edram/internal/experiments"
	"edram/internal/mapping"
	"edram/internal/mpeg2"
	"edram/internal/reliab"
	"edram/internal/scanconv"
	"edram/internal/scenario"
	"edram/internal/sched"
	"edram/internal/service"
	"edram/internal/traffic"
	"edram/internal/views"
)

// MacroSpec specifies an embedded DRAM macro (capacity, interface width,
// banks, page length, building block, redundancy). Zero-valued optional
// fields are auto-derived.
type MacroSpec = iedram.Spec

// Macro is a constructed embedded memory module with area, timing,
// bandwidth and power views.
type Macro = iedram.Macro

// Redundancy levels for MacroSpec.Redundancy.
const (
	RedundancyNone = iedram.RedundancyNone
	RedundancyLow  = iedram.RedundancyLow
	RedundancyStd  = iedram.RedundancyStd
	RedundancyHigh = iedram.RedundancyHigh
)

// BuildMacro validates the spec and constructs the macro.
func BuildMacro(spec MacroSpec) (*Macro, error) { return iedram.Build(spec) }

// ViewFile is one generated deliverable (HDL, floorplan, .lib, test
// program or datasheet).
type ViewFile = views.File

// Views renders the §5 "all views" bundle of a macro.
func Views(m *Macro) ([]ViewFile, error) {
	b, err := views.New(m)
	if err != nil {
		return nil, err
	}
	return b.All()
}

// Requirements captures what an application needs from its embedded
// memory: capacity, sustained bandwidth at an expected page-hit rate,
// and optional area/power/clock constraints.
type Requirements = core.Requirements

// Candidate is one evaluated design point; Recommendation a quantized,
// named pick from the Pareto frontier.
type (
	Candidate      = core.Candidate
	Recommendation = core.Recommendation
)

// DesignPoint is one un-evaluated coordinate of the design space, as
// enumerated by the sweep generator feeding the exploration engine.
type DesignPoint = core.Point

// ExploreStats is a progress snapshot of the parallel exploration
// engine (points enumerated/built/infeasible/pruned, Pareto-front size,
// wall time, per-worker busy time).
type ExploreStats = core.ExploreStats

// ExploreOption configures ExploreContext and RecommendContext.
type ExploreOption = core.ExploreOption

// WithWorkers sets the evaluation worker-pool size (default
// runtime.GOMAXPROCS(0)).
func WithWorkers(n int) ExploreOption { return core.WithWorkers(n) }

// WithProgress registers a periodic progress callback; the final
// snapshot arrives with ExploreStats.Done set.
func WithProgress(fn func(ExploreStats)) ExploreOption { return core.WithProgress(fn) }

// WithProgressEvery sets the number of enumerated points between
// progress callbacks (default 512).
func WithProgressEvery(n int) ExploreOption { return core.WithProgressEvery(n) }

// WithObserver registers a per-candidate tap, invoked serially for
// every built candidate before it is streamed to the caller.
func WithObserver(fn func(Candidate)) ExploreOption { return core.WithObserver(fn) }

// ExploreContext enumerates and evaluates the full design space on a
// worker pool, streaming every buildable candidate (feasible or not) on
// the returned channel until the sweep is exhausted or ctx is
// cancelled. Candidate.Seq restores canonical enumeration order.
func ExploreContext(ctx context.Context, req Requirements, opts ...ExploreOption) (<-chan Candidate, error) {
	return core.ExploreContext(ctx, req, opts...)
}

// RecommendContext is the context-aware, parallel form of Recommend:
// it streams the space through an incremental Pareto front and
// quantizes the feasible survivors into at most four named picks.
func RecommendContext(ctx context.Context, req Requirements, opts ...ExploreOption) ([]Recommendation, error) {
	return core.RecommendContext(ctx, req, opts...)
}

// Explore enumerates and evaluates the full design space for the
// requirements, serially, returning candidates in enumeration order.
// It is a compatibility wrapper over ExploreContext; new code should
// prefer the streaming API.
func Explore(req Requirements) ([]Candidate, error) { return core.Explore(req) }

// Recommend quantizes the feasible Pareto frontier into at most four
// named configurations (min-area, min-power, max-bandwidth, min-cost).
// It is a compatibility wrapper over RecommendContext.
func Recommend(req Requirements) ([]Recommendation, error) { return core.Recommend(req) }

// Client is one memory client (a request generator plus an optional
// latency budget for the deadline arbiter).
type Client = sched.Client

// Request generators for Client.Gen.
type (
	Sequential  = traffic.Sequential
	Strided     = traffic.Strided
	Random      = traffic.Random
	Block2D     = traffic.Block2D
	Alternating = traffic.Alternating
)

// SimOptions configures the memory controller (arbitration policy, page
// policy, FR-FCFS reorder window, tracing).
type SimOptions = sched.Options

// Arbitration policies for SimOptions.Policy.
const (
	RoundRobin    = sched.RoundRobin
	FixedPriority = sched.FixedPriority
	OldestFirst   = sched.OldestFirst
	OpenPageFirst = sched.OpenPageFirst
	Deadline      = sched.Deadline
)

// SimResult is the outcome of a controller run: sustained bandwidth,
// hit rate, per-client latency statistics and FIFO depths.
type SimResult = sched.Result

// Simulate runs the clients against the macro through a bank-interleaved
// mapping with the given controller options.
func Simulate(m *Macro, opt SimOptions, clients []Client) (SimResult, error) {
	cfg := m.DeviceConfig()
	gm := mapping.Geometry{Banks: cfg.Banks, RowsBank: cfg.RowsPerBank, PageBytes: cfg.PageBits / 8}
	mp, err := mapping.NewBankInterleaved(gm)
	if err != nil {
		return SimResult{}, err
	}
	return sched.RunWithOptions(cfg, mp, opt, clients)
}

// ECCScheme selects the word-level error protection of a macro's
// interface (MacroSpec.ECC, ReliabilityConfig.ECC).
type ECCScheme = reliab.ECC

// ECC schemes, weakest to strongest.
const (
	ECCNone         = reliab.ECCNone
	ECCParity       = reliab.ECCParity
	ECCSECDED       = reliab.ECCSECDED
	ECCChipkillLite = reliab.ECCChipkillLite
)

// ParseECC maps a scheme name ("none", "parity", "secded", "chipkill")
// to its ECCScheme.
func ParseECC(name string) (ECCScheme, error) { return reliab.ParseECC(name) }

// ReliabilityConfig arms the fault-injection and repair pipeline for a
// simulation (SimOptions.Reliability): seeded defect map, retention
// tail, soft-error rate, ECC scheme and spare-row budget.
type ReliabilityConfig = reliab.Config

// FaultEvent is one runtime error event observed by the reliability
// ladder (SimOptions.FaultObserver).
type FaultEvent = reliab.FaultEvent

// ReliabilityStats aggregates the ladder's counters over a run
// (SimResult.Reliability): injected faults, per-outcome access counts,
// retries, scrubs, spare usage and capacity degradation.
type ReliabilityStats = reliab.Stats

// Experiment is one regenerated table of the paper; Experiments runs the
// full E1–E22 + ablation (A1–A5) suite (what cmd/papertables prints).
type Experiment = experiments.Experiment

// Experiments regenerates every experiment.
func Experiments() ([]Experiment, error) { return experiments.All() }

// Application models (the paper's case studies), re-exported for
// downstream sizing studies.

// MPEG2 decoder memory model (§4.1).
type (
	MPEG2Format = mpeg2.Format
	MPEG2Budget = mpeg2.Budget
)

// MPEG2PAL and MPEG2NTSC return the standard 4:2:0 formats.
func MPEG2PAL() MPEG2Format  { return mpeg2.PAL() }
func MPEG2NTSC() MPEG2Format { return mpeg2.NTSC() }

// MPEG2BudgetFor computes the decoder's memory budget (full output
// buffer mode).
func MPEG2BudgetFor(f MPEG2Format) (MPEG2Budget, error) {
	return mpeg2.BudgetFor(f, mpeg2.FullOutput)
}

// Scan-rate converter memory model (§5 application list).
type (
	ScanStandard = scanconv.Standard
	ScanBudget   = scanconv.Budget
)

// ScanPAL50 returns the 625-line 50-Hz source standard.
func ScanPAL50() ScanStandard { return scanconv.PAL50() }

// ScanBudgetFor computes the field-store budget of an n-field
// motion-adaptive converter.
func ScanBudgetFor(s ScanStandard, fields int) (ScanBudget, error) {
	return scanconv.BudgetFor(s, fields)
}

// RedundancyLevel names a redundancy provisioning level of a MacroSpec.
type RedundancyLevel = iedram.RedundancyLevel

// ParseRedundancy maps a level name ("none", "low", "std", "high") to
// its RedundancyLevel — the inverse of RedundancyLevel.String and the
// JSON wire form.
func ParseRedundancy(name string) (RedundancyLevel, error) { return iedram.ParseRedundancy(name) }

// Service layer (the fourth workflow): ServeHTTP-able server behind
// cmd/edramd with a canonical-key result cache, request coalescing and
// a shared evaluation worker pool. The wire schema re-exported below is
// JSON-stable: edramx -json, the daemon and these types all encode
// through the same builders.
type (
	Service        = service.Server
	ServiceConfig  = service.Config
	ServiceMetrics = service.Metrics
)

// NewService builds a server (its own cache, worker pool and metrics
// registry) from the config; the zero config gets production defaults.
func NewService(cfg ServiceConfig) *Service { return service.NewServer(cfg) }

// Wire schema of the service endpoints (and of edramx -json).
type (
	ExploreResponse     = service.ExploreResponse
	RecommendResponse   = service.RecommendResponse
	SimulateRequest     = service.SimulateRequest
	SimulateResponse    = service.SimulateResponse
	DatasheetResponse   = service.DatasheetResponse
	ExperimentsResponse = service.ExperimentsResponse
)

// Wire schema of the async job API (POST /v1/jobs and friends):
// long-running explores, Monte-Carlo reliability campaigns and
// scenario evaluations with resumable range-partitioned checkpoints.
type (
	JobRequest        = service.JobRequest
	JobStatusResponse = service.JobStatusResponse
	JobListResponse   = service.JobListResponse
	TrialsJobRequest  = service.TrialsJobRequest
	TrialsResponse    = service.TrialsResponse
)

// BuildExploreResponse runs the exploration and assembles the
// /v1/explore wire response — what edramx -json prints and the daemon
// serves, byte-identical through EncodeResponse.
func BuildExploreResponse(ctx context.Context, req Requirements, workers int) (*ExploreResponse, error) {
	return service.BuildExplore(ctx, req, workers, nil)
}

// EncodeResponse renders any wire response in its canonical encoding
// (compact JSON plus trailing newline).
func EncodeResponse(v any) ([]byte, error) { return service.Encode(v) }

// Declarative scenarios (the fifth workflow): a versioned JSON document
// describing a memory hierarchy, a workload and a constraint set,
// compiled onto the engine's inputs. One loader backs POST /v1/scenario
// on edramd, `edramx -scenario` and `memsim -scenario`; the corpus
// under examples/scenarios/ is the reference document set.
type (
	Scenario         = scenario.Scenario
	ScenarioLevel    = scenario.Level
	ScenarioClient   = scenario.Client
	CompiledScenario = scenario.Compiled
	ClientSpec       = scenario.ClientSpec
	ScenarioResponse = service.ScenarioResponse
)

// WireSchemaVersion is the wire-schema version every service response
// reports in schema_version and every scenario document must declare.
const WireSchemaVersion = service.SchemaVersion

// ParseScenario decodes a scenario document with strict field checking
// (unknown fields are errors, not ignored knobs).
func ParseScenario(b []byte) (*Scenario, error) { return scenario.Parse(b) }

// LoadScenario reads, parses and validates a scenario file, reporting
// every violation in one aggregate error.
func LoadScenario(path string) (*Scenario, error) { return scenario.Load(path) }

// BuildScenarioResponse compiles and evaluates a scenario — the
// /v1/scenario wire response, byte-identical to `edramx -scenario
// -json` through EncodeResponse.
func BuildScenarioResponse(ctx context.Context, scn *Scenario, workers int) (*ScenarioResponse, error) {
	return service.BuildScenario(ctx, scn, workers)
}
