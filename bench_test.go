package edram_test

import (
	"context"
	"fmt"
	"io"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"

	edrampkg "edram"
	"edram/internal/bist"
	"edram/internal/cache"
	"edram/internal/core"
	"edram/internal/dram"
	"edram/internal/edram"
	"edram/internal/experiments"
	"edram/internal/tech"
)

// Each BenchmarkE* regenerates one experiment of the paper (see
// DESIGN.md §3 for the claim index and EXPERIMENTS.md for the recorded
// results). The headline finding of each experiment is attached to the
// benchmark output as a custom metric.

func benchExperiment(b *testing.B, run func() (experiments.Experiment, error), metric string) {
	b.Helper()
	var e experiments.Experiment
	var err error
	for i := 0; i < b.N; i++ {
		e, err = run()
		if err != nil {
			b.Fatal(err)
		}
	}
	v, err := e.Finding(metric)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(v, metric)
}

func BenchmarkE1IOPower(b *testing.B) {
	benchExperiment(b, experiments.E1IOPower, "power-ratio@4GBps")
}

func BenchmarkE2FillFrequency(b *testing.B) {
	benchExperiment(b, experiments.E2FillFrequency, "fill-ratio@4Mbit")
}

func BenchmarkE3Granularity(b *testing.B) {
	benchExperiment(b, experiments.E3Granularity, "waste@256bit")
}

func BenchmarkE4WireDelay(b *testing.B) {
	benchExperiment(b, experiments.E4WireDelay, "delay-ratio-80mm-vs-5mm")
}

func BenchmarkE5MPEG2(b *testing.B) {
	benchExperiment(b, experiments.E5MPEG2, "frame-decode-ms")
}

func BenchmarkE6MemoryGap(b *testing.B) {
	benchExperiment(b, experiments.E6MemoryGap, "iram-latency-ratio")
}

func BenchmarkE7SiemensConcept(b *testing.B) {
	benchExperiment(b, experiments.E7SiemensConcept, "efficiency@16Mbit")
}

func BenchmarkE8Sustained(b *testing.B) {
	benchExperiment(b, experiments.E8Sustained, "recovery")
}

func BenchmarkE9FIFODepth(b *testing.B) {
	benchExperiment(b, experiments.E9FIFODepth, "fifo-round-robin")
}

func BenchmarkE10TestCost(b *testing.B) {
	benchExperiment(b, experiments.E10TestCost, "bist-saving")
}

func BenchmarkE11Yield(b *testing.B) {
	benchExperiment(b, experiments.E11Yield, "std-yield@1.2")
}

func BenchmarkE12Process(b *testing.B) {
	benchExperiment(b, experiments.E12Process, "logic-vs-dram-area")
}

// Micro-benchmarks of the substrates, for performance tracking.

func BenchmarkDeviceAccess(b *testing.B) {
	d, err := dram.New(dram.Config{
		Banks: 4, RowsPerBank: 2048, PageBits: 2048, DataBits: 64,
		Timing: tech.PC100(),
	})
	if err != nil {
		b.Fatal(err)
	}
	now := 0.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := d.Access(now, i%4, (i/7)%2048, i%2 == 0)
		if err != nil {
			b.Fatal(err)
		}
		now = res.StartNs
	}
}

func BenchmarkCacheAccess(b *testing.B) {
	c, err := cache.New(cache.Config{SizeBytes: 16 << 10, LineBytes: 32, Ways: 2, HitNs: 2})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(int64(i*64)%(1<<20), i%4 == 0)
	}
}

func BenchmarkMarchCMinus64Kbit(b *testing.B) {
	ru := bist.Runner{CycleNs: 10, ParallelBits: 256}
	alg := bist.MarchCMinus()
	for i := 0; i < b.N; i++ {
		a, err := dram.NewArray(256, 256)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ru.RunMarch(a, alg, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMacroBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := edram.Build(edram.Spec{CapacityMbit: 64, InterfaceBits: 256}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDesignSpaceExplore(b *testing.B) {
	req := core.Requirements{CapacityMbit: 16, BandwidthGBps: 2, HitRate: 0.8, DefectsPerCm2: 0.8}
	for i := 0; i < b.N; i++ {
		if _, err := core.Explore(req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExploreParallel measures the streaming engine's evaluation
// throughput (points/sec) at 1, 4 and GOMAXPROCS workers.
func BenchmarkExploreParallel(b *testing.B) {
	req := core.Requirements{CapacityMbit: 16, BandwidthGBps: 2, HitRate: 0.8, DefectsPerCm2: 0.8}
	counts := []int{1, 4}
	if max := runtime.GOMAXPROCS(0); max != 1 && max != 4 {
		counts = append(counts, max)
	}
	for _, w := range counts {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			var points int64
			for i := 0; i < b.N; i++ {
				ch, err := core.ExploreContext(context.Background(), req, core.WithWorkers(w))
				if err != nil {
					b.Fatal(err)
				}
				n := int64(0)
				for range ch {
					n++
				}
				points += n
			}
			b.ReportMetric(float64(points)/b.Elapsed().Seconds(), "points/sec")
		})
	}
}

// BenchmarkExplorePruned measures the constraint-pruned streaming
// engine: "open" has no prunable constraint (the pruning planner's
// overhead must be invisible), "constrained" lets the planner skip
// whole Seq subspaces analytically.
func BenchmarkExplorePruned(b *testing.B) {
	for _, tc := range []struct {
		name string
		req  core.Requirements
	}{
		{"open", core.Requirements{CapacityMbit: 16, BandwidthGBps: 2, HitRate: 0.8, DefectsPerCm2: 0.8}},
		{"constrained", core.Requirements{CapacityMbit: 16, BandwidthGBps: 2, HitRate: 0.8, DefectsPerCm2: 0.8, MaxAreaMm2: 25, MaxPowerMW: 900}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ch, err := core.ExploreContext(context.Background(), tc.req, core.WithPruning())
				if err != nil {
					b.Fatal(err)
				}
				front := core.NewFrontier()
				for c := range ch {
					front.Add(c)
				}
				if front.Size() == 0 {
					b.Fatal("empty frontier")
				}
			}
		})
	}
}

// BenchmarkDeltaExplore is the PR's headline comparison: "cold" is a
// full sweep of the tweaked requirements, "warm" re-serves the same
// tweak from a retained sweep of the unconstrained base through
// DeltaExplore. The warm/cold ns/op ratio is the incremental path's
// speedup for the tweak-one-constraint pattern.
func BenchmarkDeltaExplore(b *testing.B) {
	base := core.Requirements{CapacityMbit: 16, BandwidthGBps: 1, HitRate: 0.5, DefectsPerCm2: 0.8}
	tweaked := base
	tweaked.MaxAreaMm2 = 25

	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ch, err := core.ExploreContext(context.Background(), tweaked, core.WithPruning())
			if err != nil {
				b.Fatal(err)
			}
			front := core.NewFrontier()
			for c := range ch {
				front.Add(c)
			}
			if front.Size() == 0 {
				b.Fatal("empty frontier")
			}
		}
	})

	b.Run("warm", func(b *testing.B) {
		st, err := core.NewDeltaState(base)
		if err != nil {
			b.Fatal(err)
		}
		ch, err := core.ExploreContext(context.Background(), base,
			core.WithPruning(), core.WithObserver(st.Observe))
		if err != nil {
			b.Fatal(err)
		}
		for range ch {
		}
		st.Seal()
		b.ResetTimer()
		var reused int64
		for i := 0; i < b.N; i++ {
			res, err := core.DeltaExplore(context.Background(), st, tweaked, 0)
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Frontier) == 0 {
				b.Fatal("empty frontier")
			}
			reused += res.Reused
		}
		b.ReportMetric(float64(reused)/float64(b.N), "reused/op")
	})
}

func BenchmarkE13SRAMPartition(b *testing.B) {
	benchExperiment(b, experiments.E13SRAMPartition, "crossover-mbit")
}

func BenchmarkE14QualityGrades(b *testing.B) {
	benchExperiment(b, experiments.E14QualityGrades, "grade-gain@3")
}

func BenchmarkE15ThermalFeedback(b *testing.B) {
	benchExperiment(b, experiments.E15ThermalFeedback, "retention-collapse")
}

func BenchmarkA1PagePolicy(b *testing.B) {
	benchExperiment(b, experiments.A1PagePolicy, "stream-open-over-closed")
}

func BenchmarkE16Markets(b *testing.B) {
	benchExperiment(b, experiments.E16Markets, "net-switch-cost-ratio")
}

func BenchmarkA2Reorder(b *testing.B) {
	benchExperiment(b, experiments.A2Reorder, "window16-over-inorder")
}

func BenchmarkE17Generations(b *testing.B) {
	benchExperiment(b, experiments.E17Generations, "bandwidth-growth")
}

func BenchmarkE18Standby(b *testing.B) {
	benchExperiment(b, experiments.E18Standby, "standby-ratio@16Mbit")
}

func BenchmarkA3ModelVsSim(b *testing.B) {
	benchExperiment(b, experiments.A3ModelVsSim, "worst-agreement")
}

func BenchmarkA4RefreshTax(b *testing.B) {
	benchExperiment(b, experiments.A4RefreshTax, "refresh-tax@3W")
}

func BenchmarkA5Prefetch(b *testing.B) {
	benchExperiment(b, experiments.A5Prefetch, "iram-advantage")
}

func BenchmarkE19SustainedHeadToHead(b *testing.B) {
	benchExperiment(b, experiments.E19SustainedHeadToHead, "sustained-advantage")
}

func BenchmarkE20Feasibility(b *testing.B) {
	benchExperiment(b, experiments.E20Feasibility, "die-128mbit-500k")
}

func BenchmarkE21Volume(b *testing.B) {
	benchExperiment(b, experiments.E21Volume, "graphics-breakeven")
}

func BenchmarkE22ScanConverter(b *testing.B) {
	benchExperiment(b, experiments.E22ScanConverter, "realtime-margin")
}

// BenchmarkServiceExplore measures the HTTP service layer end-to-end
// over an in-process server: cold issues a distinct request every
// iteration (cache miss, full sweep through the shared worker pool),
// warm replays one request (canonical-key cache hit). The concurrent
// variants fan the same load across parallel clients, where cold
// requests split the worker pool and identical in-flight requests
// coalesce.
func BenchmarkServiceExplore(b *testing.B) {
	for _, mode := range []string{"cold", "warm"} {
		for _, clients := range []int{1, 4} {
			b.Run(fmt.Sprintf("%s/clients=%d", mode, clients), func(b *testing.B) {
				srv := httptest.NewServer(edrampkg.NewService(edrampkg.ServiceConfig{
					CacheEntries: 1 << 16,
					CacheTTL:     -1, // entries never expire mid-benchmark
				}))
				defer srv.Close()
				client := srv.Client()
				post := func(body string) error {
					resp, err := client.Post(srv.URL+"/v1/explore", "application/json", strings.NewReader(body))
					if err != nil {
						return err
					}
					defer resp.Body.Close()
					if _, err := io.Copy(io.Discard, resp.Body); err != nil {
						return err
					}
					if resp.StatusCode != 200 {
						return fmt.Errorf("status %d", resp.StatusCode)
					}
					return nil
				}
				// Distinct bandwidths force distinct canonical keys.
				cold := func(i int64) string {
					return fmt.Sprintf(`{"capacity_mbit":16,"bandwidth_gbps":%.9f,"hit_rate":0.5}`, 1+float64(i)*1e-6)
				}
				const warmBody = `{"capacity_mbit":16,"bandwidth_gbps":1,"hit_rate":0.5}`
				if mode == "warm" {
					if err := post(warmBody); err != nil {
						b.Fatal(err)
					}
				}
				var seq atomic.Int64
				b.ResetTimer()
				b.SetParallelism(clients) // clients × GOMAXPROCS goroutines
				b.RunParallel(func(pb *testing.PB) {
					for pb.Next() {
						var err error
						if mode == "cold" {
							err = post(cold(seq.Add(1)))
						} else {
							err = post(warmBody)
						}
						if err != nil {
							b.Fatal(err)
						}
					}
				})
			})
		}
	}
}
