// Package edram is a reproduction of "Embedded DRAM Architectural
// Trade-Offs" (Wehn & Hein, DATE 1998): a CACTI-style analytical model
// suite plus an event-driven memory-system simulator for embedded DRAM,
// with a design-space explorer as its primary deliverable.
//
// The root package is the stable facade (edram.go) over the internal
// packages. It covers three workflows:
//
//  1. Build a macro and render its deliverables: BuildMacro, Views.
//  2. Explore the §3 design space: ExploreContext streams every
//     buildable Candidate from a parallel worker pool, and
//     RecommendContext quantizes the feasible Pareto frontier into at
//     most four named picks. Both take a context for cancellation and
//     functional options — WithWorkers (pool size), WithProgress
//     (ExploreStats snapshots: points enumerated/built/infeasible/
//     pruned, front size, wall time, per-worker busy time), and
//     WithObserver (a per-candidate tap).
//  3. Simulate a multi-client memory system on a macro: Simulate, with
//     SimOptions.Observer as the matching per-request trace callback.
//  4. Serve the engine over HTTP: NewService builds the server behind
//     cmd/edramd (result cache keyed by canonical request strings,
//     request coalescing, a shared worker pool, Prometheus metrics);
//     the re-exported wire types (ExploreResponse, ...) are the
//     JSON-stable schema shared with edramx -json, and Requirements /
//     MacroSpec carry the matching JSON tags. Every response carries
//     schema_version (WireSchemaVersion); requests may pin one.
//  5. Describe whole scenarios declaratively: LoadScenario reads a
//     versioned JSON document (hierarchy levels + workload clients +
//     constraints, see examples/scenarios/), Scenario.Compile lowers
//     it onto Requirements/MacroSpec/client inputs, and
//     BuildScenarioResponse evaluates every level — the same path as
//     POST /v1/scenario and `edramx -scenario`.
//
// Migration note: the original serial signatures remain as thin
// wrappers over the engine and keep their exact behavior —
//
//	Explore(req)   ≡ collect ExploreContext(context.Background(), req)
//	                 and sort by Candidate.Seq (enumeration order)
//	Recommend(req) ≡ RecommendContext(context.Background(), req)
//
// — so existing callers need no change; new code should use the
// context-aware forms.
//
// See README.md for the package map, DESIGN.md for the system inventory
// and EXPERIMENTS.md for the paper-vs-measured record. bench_test.go
// carries the experiment benchmarks plus BenchmarkExploreParallel, the
// engine's points/sec scaling record.
package edram
