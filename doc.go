// Package edram is a reproduction of "Embedded DRAM Architectural
// Trade-Offs" (Wehn & Hein, DATE 1998): a CACTI-style analytical model
// suite plus an event-driven memory-system simulator for embedded DRAM,
// with a design-space explorer as its primary deliverable.
//
// The public surface lives in the internal packages (this module is the
// application); see README.md for the map, DESIGN.md for the system
// inventory and EXPERIMENTS.md for the paper-vs-measured record. The
// root package exists to carry the module documentation and the
// experiment benchmarks (bench_test.go).
package edram
