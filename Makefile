GO ?= go

.PHONY: build test vet lint race bench fuzz fuzz-smoke serve-smoke check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# lint runs the project's own analyzer suite (cmd/edramvet): unit-suffix
# conflicts, nondeterminism in model packages, exact float comparisons,
# and uses of deprecated symbols. See README "Static analysis".
lint:
	$(GO) run ./cmd/edramvet ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchmem -run NONE .

# fuzz runs the cell-array fuzzer with a real time budget; fuzz-smoke
# only replays the checked-in seed corpus (no -fuzz), which is cheap
# enough to sit on the tier-1 path.
FUZZTIME ?= 10s
fuzz:
	$(GO) test -run NONE -fuzz FuzzArrayReadWrite -fuzztime $(FUZZTIME) ./internal/dram/

fuzz-smoke:
	$(GO) test -run 'Fuzz' ./internal/dram/

# serve-smoke boots the real edramd daemon on a random loopback port,
# drives /healthz, /v1/recommend and /metrics with live HTTP calls,
# then SIGTERMs itself to exercise the graceful-drain path.
serve-smoke:
	$(GO) run ./cmd/edramd -smoke

# check is the tier-1 verify path: build, vet, lint, then race-checked
# tests, so the exploration engine's, experiment runner's and
# reliability trial pool's concurrency is exercised under the race
# detector on every PR, plus a replay of the fuzz seed corpus and the
# daemon's end-to-end smoke.
check: build vet lint race fuzz-smoke serve-smoke
