GO ?= go

.PHONY: build test vet race bench check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchmem -run NONE .

# check is the tier-1 verify path: build, vet, then race-checked tests,
# so the exploration engine's and experiment runner's concurrency is
# exercised under the race detector on every PR.
check: build vet race
