GO ?= go

.PHONY: build test vet lint lint-audit lint-sarif lint-baseline race bench bench-compare fuzz fuzz-smoke serve-smoke load-smoke shard-smoke scenarios check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# lint runs the project's own analyzer suite (cmd/edramvet) in diff
# mode against the committed baseline: only NEW findings fail, so
# pre-existing accepted debt (currently none — the baseline is empty)
# never blocks an unrelated PR. See README "Static analysis".
LINT_BASELINE ?= lint_baseline.json
lint:
	$(GO) run ./cmd/edramvet -diff $(LINT_BASELINE) ./...

# lint-audit fails on bad //nolint:edramvet directives: stale (the
# suppressed diagnostic no longer fires), reasonless, or scoped to an
# analyzer that does not exist.
lint-audit:
	$(GO) run ./cmd/edramvet -audit-nolint ./...

# lint-sarif writes the full-suite findings as SARIF 2.1.0 (the CI
# artifact). Findings do not fail this target — `lint` is the gate.
LINT_SARIF ?= lint.sarif
lint-sarif:
	$(GO) run ./cmd/edramvet -format=sarif ./... > $(LINT_SARIF) || true
	@echo "lint-sarif: report written to $(LINT_SARIF)"

# lint-baseline regenerates the committed baseline from the current
# tree. Only run this deliberately, when accepting new debt.
lint-baseline:
	$(GO) run ./cmd/edramvet -write-baseline $(LINT_BASELINE) ./...

race:
	$(GO) test -race ./...

# bench runs every benchmark in the repo with allocation accounting and
# snapshots the results as JSON through cmd/benchdiff — the trajectory
# harness described in README "Performance & profiling". BENCHTIME=1x
# is the CI smoke setting: ns/op is noise at one iteration but
# allocs/op stays meaningful.
BENCHTIME ?= 1s
BENCH_RAW ?= bench_raw.txt
BENCH_OUT ?= bench_snapshot.json
bench:
	$(GO) test -run NONE -bench . -benchmem -benchtime $(BENCHTIME) ./... > $(BENCH_RAW)
	@cat $(BENCH_RAW)
	$(GO) run ./cmd/benchdiff -o $(BENCH_OUT) $(BENCH_RAW)
	@rm -f $(BENCH_RAW)
	@echo "bench: snapshot written to $(BENCH_OUT)"

# bench-compare gates a fresh snapshot against the committed trajectory
# snapshot. BENCH_BASE defaults to the newest committed BENCH_<n>.json
# (baseline sidecars like BENCH_6_baseline.json are a cold-vs-warm pair
# for one PR, not the trajectory, so they are excluded) — override it
# to gate against an older point. The default tolerances suit the CI
# smoke (BENCHTIME=1x): ns/op is effectively ungated (single-iteration
# timing is dominated by warm-up), while an allocation blow-up beyond
# 3x still fails. For a real perf gate run with BENCHTIME=1s and tight
# tolerances locally.
BENCH_BASE ?= $(shell ls BENCH_*.json 2>/dev/null | grep -E '^BENCH_[0-9]+\.json$$' | sort -t_ -k2 -n | tail -1)
BENCH_TIME_TOL ?= 50
BENCH_ALLOC_TOL ?= 2.0
bench-compare: bench
	@echo "bench-compare: gating $(BENCH_OUT) against $(BENCH_BASE)"
	$(GO) run ./cmd/benchdiff -compare -time-tol $(BENCH_TIME_TOL) -alloc-tol $(BENCH_ALLOC_TOL) $(BENCH_BASE) $(BENCH_OUT)

# fuzz runs the cell-array fuzzer with a real time budget; fuzz-smoke
# only replays the checked-in seed corpus (no -fuzz), which is cheap
# enough to sit on the tier-1 path.
FUZZTIME ?= 10s
fuzz:
	$(GO) test -run NONE -fuzz FuzzArrayReadWrite -fuzztime $(FUZZTIME) ./internal/dram/

fuzz-smoke:
	$(GO) test -run 'Fuzz' ./internal/dram/

# serve-smoke boots the real edramd daemon on a random loopback port,
# drives /healthz, /v1/recommend and /metrics with live HTTP calls,
# then SIGTERMs itself to exercise the graceful-drain path.
serve-smoke:
	$(GO) run ./cmd/edramd -smoke

# load-smoke replays the deterministic SLO profile (cmd/edramload,
# seed 1) against a self-hosted daemon whose /v1/simulate budget is
# deliberately tiny, with local sharding on and a pre-warmed disk
# cache tier: hot-key, cache-busting, coalescing-storm, slow-client,
# mid-flight-disconnect, deliberate-overload and sharded-explore
# mixes. It exits non-zero on any SLO breach or any 5xx other than
# the overload mix's intended 503s, and reports per-tier cache hit
# ratios.
load-smoke:
	$(GO) run ./cmd/edramload -seed 1

# shard-smoke is the scale-out end-to-end test: edramd re-executes
# itself as two real peer processes on loopback ports, shards explores
# across them from an in-process coordinator (disk cache tier and job
# API enabled), SIGKILLs one peer mid-topology, and verifies every
# response stays byte-identical to the single-process sweep.
shard-smoke:
	$(GO) run ./cmd/edramd -shard-smoke

# check is the tier-1 verify path: build, vet, lint (diff-gated) plus
# the suppression audit, then race-checked tests, so the exploration engine's, experiment runner's and
# reliability trial pool's concurrency is exercised under the race
# detector on every PR, plus a replay of the fuzz seed corpus, the
# daemon's end-to-end smoke, the load/SLO smoke, the 3-process sharded
# explore smoke and the scenario-corpus gate.
check: build vet lint lint-audit race fuzz-smoke serve-smoke load-smoke shard-smoke scenarios

# scenarios validates the declarative-scenario corpus: every *.json
# under examples/scenarios/ must load and compile through the shared
# internal/scenario loader (the same path POST /v1/scenario takes).
scenarios:
	$(GO) run ./cmd/edramx -scenario-validate examples/scenarios
