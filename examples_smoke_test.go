package edram_test

import (
	"os/exec"
	"path/filepath"
	"testing"
)

// TestExamplesRun compiles and executes every example main — the
// quickest guarantee that the documented entry points stay runnable.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples in -short mode")
	}
	dirs, err := filepath.Glob("examples/*")
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) < 5 {
		t.Fatalf("expected at least 5 examples, found %d", len(dirs))
	}
	for _, dir := range dirs {
		dir := dir
		// examples/scenarios holds the declarative JSON corpus, not a
		// main package; it is gated by `make scenarios` and the service
		// corpus test instead.
		if gofiles, _ := filepath.Glob(filepath.Join(dir, "*.go")); len(gofiles) == 0 {
			continue
		}
		t.Run(filepath.Base(dir), func(t *testing.T) {
			out, err := exec.Command("go", "run", "./"+dir).CombinedOutput()
			if err != nil {
				t.Fatalf("%s failed: %v\n%s", dir, err, out)
			}
			if len(out) == 0 {
				t.Errorf("%s produced no output", dir)
			}
		})
	}
}
